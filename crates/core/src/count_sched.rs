//! The shared scheduler behind every Count implementation.
//!
//! Algorithm 4 evaluates one Multiplication Group per triple
//! `i < j < k`. All three implementations in this crate — the fast
//! kernel ([`crate::count`]), the message-passing runtime
//! ([`crate::count_runtime`]), and the sampled estimator
//! ([`crate::count_sampled`]) — iterate the same space: an outer walk
//! over the `(i, j)` pairs with a non-empty `k` range, an inner batched
//! `k` loop per pair. This module owns that shape once:
//!
//! * **Pair-space partitioning.** The lexicographic `(i, j)` pair list
//!   is cut into contiguous [`PairChunk`]s of roughly equal *triple*
//!   weight (pair `(i, j)` costs `n − j − 1` triples, so pair counts
//!   alone would load-balance badly). The partition depends on `n`
//!   **only** — never on worker count or machine — because chunk ids
//!   key the amortised OT offline sessions and the offline ledger must
//!   stay schedule-invariant. Workers pull chunks from an atomic
//!   queue.
//! * **Batched rounds.** The `k` loop advances in blocks of
//!   [`CountScheduler::batch`] triples; each block is one
//!   communication round (`3·block` elements each way) and one block
//!   PRG expansion.
//! * **Determinism by construction.** Randomness is keyed per pair
//!   ([`cargo_mpc::PairDealer`], the crate-private `share_prf`), never
//!   per worker or per chunk, so the servers' share pairs are bit-identical for
//!   every thread count and batch size — the partition only decides
//!   *who* consumes a stream. The scheduler-invariance property suite
//!   (`crates/core/tests/scheduler_invariance.rs`) pins this.

use cargo_mpc::MgDraw;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default `k`-loop batch: 64 triples per round, the sweet spot the
/// secure-count bench sweep settled on (large enough to amortise the
/// block PRG expansion and message overhead, small enough to keep
/// per-message buffers tiny — 192 ring elements each way).
pub const DEFAULT_COUNT_BATCH: usize = 64;

/// Target number of chunks the pair walk is cut into. Fixed —
/// deliberately **not** scaled by the worker count — so the chunk list
/// is a function of `n` alone: the chunk-amortised OT offline sessions
/// are keyed by chunk id, and a machine-dependent partition would make
/// the offline ledger depend on core count. 64 parts oversubscribes
/// any worker pool this side of a rack while keeping per-chunk state
/// (one OT session, one batch scratch) coarse.
const CHUNK_PARTS: u64 = 64;

/// Floor on a chunk's triple weight: below this, splitting buys no
/// wall-clock (a 512-triple chunk runs in ~15 µs) but costs one OT
/// session per chunk in the amortised offline phase. Small inputs
/// therefore collapse to a handful of chunks instead of shattering
/// into near-per-pair ones.
const MIN_CHUNK_TRIPLES: u64 = 512;

/// PRF expanding user bit-shares: uniform in `Z_{2^64}`, keyed by
/// `(seed, i, j)`. Server S₁'s share of bit `a_ij` is
/// `share_prf(seed, i, j)`; S₂'s is `a_ij − ⟨a_ij⟩₁`. Shared by every
/// Count implementation so their executions are comparable
/// share-for-share.
#[inline(always)]
pub(crate) fn share_prf(seed: u64, i: u32, j: u32) -> u64 {
    let mut z = seed ^ (((i as u64) << 32) | j as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A contiguous run of `(i, j)` pairs in lexicographic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairChunk {
    /// Chunk index — the tag its messages travel under in the sharded
    /// runtime.
    pub id: u32,
    /// First pair of the run.
    start: (u32, u32),
    /// Number of pairs in the run.
    pub pairs: u32,
    /// Total triples across the run (the chunk's work weight).
    pub triples: u64,
}

/// Iterator over one chunk's pairs in lexicographic `(i, j)` order.
#[derive(Debug, Clone)]
pub struct PairIter {
    n: usize,
    i: usize,
    j: usize,
    remaining: u32,
}

impl Iterator for PairIter {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let out = (self.i, self.j);
        // Advance to the next pair with a non-empty k range
        // (j ≤ n − 2 so that k = j + 1 exists).
        if self.j < self.n - 2 {
            self.j += 1;
        } else {
            self.i += 1;
            self.j = self.i + 1;
        }
        Some(out)
    }
}

/// Deterministic partition of the Count phase's `(i, j)` pair space.
#[derive(Debug, Clone)]
pub struct CountScheduler {
    n: usize,
    workers: usize,
    batch: usize,
    chunks: Vec<PairChunk>,
    total_triples: u64,
}

impl CountScheduler {
    /// Builds the schedule for an `n × n` matrix.
    ///
    /// * `threads` — worker threads; `0` means all cores.
    /// * `batch` — triples per round/block; `0` means
    ///   [`DEFAULT_COUNT_BATCH`].
    ///
    /// The share pairs produced under this schedule are identical for
    /// every `(threads, batch)` choice; only wall-clock and round
    /// granularity change.
    pub fn new(n: usize, threads: usize, batch: usize) -> Self {
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .max(1);
        // Clamp to the longest possible k range: blocks are already
        // `min(n - k, batch)`, so larger values change nothing except
        // the size of the per-chunk word buffer — and an unchecked
        // `--batch` must not drive a multi-gigabyte allocation.
        let batch = if batch == 0 { DEFAULT_COUNT_BATCH } else { batch }.min(n.max(1));
        let total_triples = if n < 3 {
            0
        } else {
            (n as u64) * (n as u64 - 1) * (n as u64 - 2) / 6
        };
        let chunks = build_chunks(n, total_triples);
        CountScheduler {
            n,
            workers,
            batch,
            chunks,
            total_triples,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resolved worker count (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Resolved batch size (≥ 1).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The chunk list (empty when `n < 3`).
    pub fn chunks(&self) -> &[PairChunk] {
        &self.chunks
    }

    /// `C(n, 3)` — every triple the schedule covers exactly once.
    pub fn total_triples(&self) -> u64 {
        self.total_triples
    }

    /// The chunk's offline preprocessing plan for the *exact* count:
    /// one [`MgDraw`] per pair, drawing the pair's full `k`-range.
    /// Single source of truth for every consumer of the chunk-keyed OT
    /// sessions (fast kernel, sharded runtime, ledger fixtures) — the
    /// sampled estimator builds its sparser plan from the public coins
    /// instead.
    pub fn chunk_plan(&self, chunk: &PairChunk) -> Vec<MgDraw> {
        self.pair_iter(chunk)
            .map(|(i, j)| MgDraw {
                i: i as u32,
                j: j as u32,
                groups: (self.n - j - 1) as u32,
            })
            .collect()
    }

    /// Iterates `chunk`'s pairs in lexicographic order.
    pub fn pair_iter(&self, chunk: &PairChunk) -> PairIter {
        PairIter {
            n: self.n,
            i: chunk.start.0 as usize,
            j: chunk.start.1 as usize,
            remaining: chunk.pairs,
        }
    }

    /// Runs `work` over every chunk on the scheduler's worker pool
    /// (scoped threads pulling chunk indices from an atomic queue) and
    /// returns the per-chunk results in chunk order. With one worker —
    /// or one chunk — everything runs inline on the caller's thread.
    pub fn run_chunks<R, F>(&self, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&PairChunk) -> R + Sync,
    {
        let chunks = &self.chunks;
        let spawn = self.workers.min(chunks.len());
        if spawn <= 1 {
            return chunks.iter().map(work).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(chunks.len()));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spawn)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= chunks.len() {
                                break;
                            }
                            local.push((idx, work(&chunks[idx])));
                        }
                        slots.lock().expect("result lock poisoned").extend(local);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("count worker panicked");
            }
        });
        let mut collected = slots.into_inner().expect("result lock poisoned");
        collected.sort_by_key(|(idx, _)| *idx);
        collected.into_iter().map(|(_, r)| r).collect()
    }
}

/// Cuts the lexicographic pair walk into chunks of roughly
/// `total / CHUNK_PARTS` triples each (floored at
/// [`MIN_CHUNK_TRIPLES`]). Depends only on `n` — see [`CHUNK_PARTS`]
/// for why worker count must not leak in.
fn build_chunks(n: usize, total_triples: u64) -> Vec<PairChunk> {
    if n < 3 {
        return Vec::new();
    }
    let target = (total_triples / CHUNK_PARTS).max(MIN_CHUNK_TRIPLES);
    let mut chunks = Vec::new();
    let mut start: Option<(u32, u32)> = None;
    let mut pairs = 0u32;
    let mut triples = 0u64;
    for i in 0..=(n - 3) {
        for j in (i + 1)..=(n - 2) {
            if start.is_none() {
                start = Some((i as u32, j as u32));
            }
            pairs += 1;
            triples += (n - j - 1) as u64;
            if triples >= target {
                chunks.push(PairChunk {
                    id: chunks.len() as u32,
                    start: start.take().expect("chunk start set"),
                    pairs,
                    triples,
                });
                pairs = 0;
                triples = 0;
            }
        }
    }
    if let Some(start) = start {
        chunks.push(PairChunk {
            id: chunks.len() as u32,
            start,
            pairs,
            triples,
        });
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every pair exactly once, in order, with the right weights.
    fn check_cover(n: usize, workers: usize) {
        let sched = CountScheduler::new(n, workers, 0);
        let mut seen = Vec::new();
        let mut triples = 0u64;
        for c in sched.chunks() {
            let got: Vec<_> = sched.pair_iter(c).collect();
            assert_eq!(got.len(), c.pairs as usize, "pair count of chunk {}", c.id);
            triples += c.triples;
            seen.extend(got);
        }
        let mut want = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if j + 1 < n {
                    want.push((i, j));
                }
            }
        }
        assert_eq!(seen, want, "n={n} workers={workers}");
        assert_eq!(triples, sched.total_triples());
    }

    #[test]
    fn chunks_cover_the_pair_space_exactly_once() {
        for n in [0usize, 1, 2, 3, 4, 5, 17, 64, 101] {
            for workers in [1usize, 2, 4, 7] {
                check_cover(n, workers);
            }
        }
    }

    #[test]
    fn chunk_weights_are_balanced() {
        let sched = CountScheduler::new(200, 4, 0);
        assert!(sched.chunks().len() >= 8, "oversubscribed chunking");
        let max = sched.chunks().iter().map(|c| c.triples).max().unwrap();
        let target = sched.total_triples() / sched.chunks().len() as u64;
        // No chunk should dominate: the last pair of a chunk can
        // overshoot by at most one pair's weight (< n triples).
        assert!(max <= target + 200, "max {max} vs target {target}");
    }

    #[test]
    fn chunk_list_is_independent_of_workers_and_batch() {
        // The chunk partition is keyed into the amortised offline
        // sessions, so it must be a function of n alone.
        for n in [5usize, 40, 150] {
            let base = CountScheduler::new(n, 1, 0);
            for (workers, batch) in [(2usize, 1usize), (4, 7), (16, 64), (0, 0)] {
                let other = CountScheduler::new(n, workers, batch);
                assert_eq!(other.chunks(), base.chunks(), "n={n} w={workers}");
            }
        }
    }

    #[test]
    fn small_inputs_use_few_coarse_chunks() {
        // The 512-triple floor keeps tiny pair spaces from shattering
        // into near-per-pair chunks (each chunk is one OT session).
        let sched = CountScheduler::new(24, 4, 0); // C(24,3) = 2024
        assert!(sched.chunks().len() <= 4, "{} chunks", sched.chunks().len());
    }

    #[test]
    fn zero_knobs_resolve_to_defaults() {
        let sched = CountScheduler::new(100, 0, 0);
        assert!(sched.workers() >= 1);
        assert_eq!(sched.batch(), DEFAULT_COUNT_BATCH);
    }

    #[test]
    fn oversized_batch_is_clamped_to_n() {
        // No k range exceeds n − 2, so a larger batch only inflates
        // the word buffer; usize::MAX must not drive the allocation.
        let sched = CountScheduler::new(10, 1, usize::MAX);
        assert_eq!(sched.batch(), 10);
        assert_eq!(CountScheduler::new(10, 1, 4).batch(), 4);
        assert_eq!(CountScheduler::new(0, 1, 0).batch(), 1);
    }

    #[test]
    fn tiny_n_has_no_chunks() {
        for n in 0..3 {
            let sched = CountScheduler::new(n, 4, 8);
            assert!(sched.chunks().is_empty());
            assert_eq!(sched.total_triples(), 0);
        }
    }

    #[test]
    fn run_chunks_preserves_chunk_order() {
        let sched = CountScheduler::new(60, 3, 0);
        let ids = sched.run_chunks(|c| c.id);
        let want: Vec<u32> = (0..sched.chunks().len() as u32).collect();
        assert_eq!(ids, want);
    }
}
