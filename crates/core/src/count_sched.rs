//! The shared scheduler behind every Count implementation.
//!
//! Algorithm 4 evaluates one Multiplication Group per triple
//! `i < j < k`. All three implementations in this crate — the fast
//! kernel ([`crate::count`]), the message-passing runtime
//! ([`crate::count_runtime`]), and the sampled estimator
//! ([`crate::count_sampled`]) — iterate the same space: an outer walk
//! over the `(i, j)` pairs with a non-empty `k` range, an inner batched
//! `k` loop per pair. This module owns that shape once:
//!
//! * **Two schedules, one triple space.** [`SchedulePlan::DenseCube`]
//!   walks every pair — the fully oblivious default. A
//!   [`SchedulePlan::CandidatePairs`] schedule walks only the pairs
//!   and `k`-lists of a *public* [`CandidateSet`]; the secret stays
//!   what it always was (edge existence between candidate pairs), and
//!   every surviving triple's Multiplication Group is drawn at its
//!   **canonical** stream position (`k − j − 1` into pair `(i, j)`'s
//!   dealer stream), so its share pair is bit-identical under either
//!   schedule.
//! * **Pair-space partitioning.** The pair list is cut into contiguous
//!   [`PairChunk`]s of roughly equal *triple* weight. The partition
//!   depends on the schedule's public inputs **only** — `n` for the
//!   dense cube, the candidate list for the sparse schedule — never on
//!   worker count or machine, because chunk ids key the amortised OT
//!   offline sessions and the offline ledger must stay
//!   schedule-invariant. Workers pull chunks from an atomic queue.
//! * **Batched rounds.** The `k` loop advances in blocks of
//!   [`CountScheduler::batch`] triples; each block is one
//!   communication round (`3·block` elements each way) and one block
//!   PRG expansion.
//! * **Determinism by construction.** Randomness is keyed per pair
//!   ([`cargo_mpc::PairDealer`], the crate-private `share_prf`), never
//!   per worker or per chunk, so the servers' share pairs are bit-identical for
//!   every thread count and batch size — the partition only decides
//!   *who* consumes a stream. The scheduler-invariance property suite
//!   (`crates/core/tests/scheduler_invariance.rs`) pins this.

use cargo_graph::{BitMatrix, CsrGraph, Graph, GraphBuilder};
use cargo_mpc::MgDraw;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default `k`-loop batch: 64 triples per round, the sweet spot the
/// secure-count bench sweep settled on (large enough to amortise the
/// block PRG expansion and message overhead, small enough to keep
/// per-message buffers tiny — 192 ring elements each way).
pub const DEFAULT_COUNT_BATCH: usize = 64;

/// Target number of chunks the pair walk is cut into. Fixed —
/// deliberately **not** scaled by the worker count — so the chunk list
/// is a function of the schedule's public inputs alone: the
/// chunk-amortised OT offline sessions are keyed by chunk id, and a
/// machine-dependent partition would make the offline ledger depend on
/// core count. 64 parts oversubscribes any worker pool this side of a
/// rack while keeping per-chunk state (one OT session, one batch
/// scratch) coarse.
const CHUNK_PARTS: u64 = 64;

/// Floor on a chunk's triple weight: below this, splitting buys no
/// wall-clock (a 512-triple chunk runs in ~15 µs) but costs one OT
/// session per chunk in the amortised offline phase. Small inputs
/// therefore collapse to a handful of chunks instead of shattering
/// into near-per-pair ones.
const MIN_CHUNK_TRIPLES: u64 = 512;

/// PRF expanding user bit-shares: uniform in `Z_{2^64}`, keyed by
/// `(seed, i, j)`. Server S₁'s share of bit `a_ij` is
/// `share_prf(seed, i, j)`; S₂'s is `a_ij − ⟨a_ij⟩₁`. Shared by every
/// Count implementation so their executions are comparable
/// share-for-share.
#[inline(always)]
pub(crate) fn share_prf(seed: u64, i: u32, j: u32) -> u64 {
    let mut z = seed ^ (((i as u64) << 32) | j as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A **public** candidate structure for the sparse Count schedule: the
/// `(i, j)` pairs that may host an edge, with, per pair, the sorted
/// list of `k > j` for which both `(i, k)` and `(j, k)` are also
/// candidate pairs — i.e. exactly the triples the candidate structure
/// admits as triangles.
///
/// Only pairs with a **non-empty** `k`-list are stored (a pair without
/// closing candidates contributes no triple and would produce a
/// zero-group offline draw). The schedule — chunk partition, offline
/// plans, chunk ids — is a pure function of this list, which is why a
/// sparse run's OT sessions and [`cargo_mpc::OfflineLedger`] are
/// reproducible from public information alone.
///
/// Privacy: using a candidate set *reveals* it (that is the point —
/// see `PROTOCOL.md`'s leakage analysis). The canonical instantiation
/// is public structural knowledge such as the symmetrised edge
/// *support* of the dataset; the protocol's secrets remain the actual
/// edge bits between candidate pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    n: usize,
    /// Candidate pairs `(i, j)`, `i < j`, lexicographic, non-empty
    /// `k`-lists only.
    pairs: Vec<(u32, u32)>,
    /// `k`-list extents: pair `p`'s list is
    /// `ks[k_offsets[p]..k_offsets[p + 1]]`.
    k_offsets: Vec<usize>,
    /// Concatenated ascending `k`-lists.
    ks: Vec<u32>,
}

impl CandidateSet {
    /// Builds the candidate structure from a public graph: candidate
    /// pairs are `g`'s (symmetrised) edges, and pair `(i, j)`'s
    /// `k`-list is the sorted common neighborhood above `j` — the
    /// triples this structure admits are exactly `g`'s triangles.
    ///
    /// Because the Project phase only *deletes* edges, any θ-truncated
    /// version of `g` is still covered by this candidate set, so a
    /// sparse secure count over it equals the dense cube's count.
    pub fn from_graph(g: &Graph) -> Self {
        let csr = CsrGraph::from_graph(g);
        let n = g.n();
        let mut pairs = Vec::new();
        let mut k_offsets = vec![0usize];
        let mut ks = Vec::new();
        for i in 0..n {
            for &j in csr.neighbors(i).iter().filter(|&&j| (j as usize) > i) {
                let before = ks.len();
                csr.common_neighbors_above(i, j as usize, j as usize, &mut ks);
                if ks.len() > before {
                    pairs.push((i as u32, j));
                    k_offsets.push(ks.len());
                }
            }
        }
        CandidateSet {
            n,
            pairs,
            k_offsets,
            ks,
        }
    }

    /// Builds the candidate structure from a (possibly asymmetric,
    /// e.g. θ-projected) matrix's **upper-triangle support**: the
    /// secure product of triple `i < j < k` multiplies exactly the
    /// upper entries `(i,j)`, `(i,k)`, `(j,k)`, so the triples this
    /// set admits are precisely those the dense cube could count as 1.
    pub fn from_support(m: &BitMatrix) -> Self {
        let n = m.n();
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in m.row(i).iter_ones().filter(|&j| j > i) {
                b.add_edge(i, j).expect("in range");
            }
        }
        Self::from_graph(&b.build())
    }

    /// The complete candidate structure on `n` vertices: every pair,
    /// every `k` — the sparse schedule degenerates to the dense cube.
    /// Mainly for equivalence tests; it costs `C(n, 3)` entries.
    pub fn complete(n: usize) -> Self {
        let mut pairs = Vec::new();
        let mut k_offsets = vec![0usize];
        let mut ks = Vec::new();
        if n >= 3 {
            for i in 0..(n as u32) {
                for j in (i + 1)..(n as u32 - 1) {
                    pairs.push((i, j));
                    ks.extend((j + 1)..(n as u32));
                    k_offsets.push(ks.len());
                }
            }
        }
        CandidateSet {
            n,
            pairs,
            k_offsets,
            ks,
        }
    }

    /// Builds the candidate structure from an explicit triple list —
    /// `(i, j, k)` with `i < j < k < n`, **sorted lexicographically
    /// and unique**. The structure admits exactly the listed triples,
    /// each at its canonical dealer-stream offset (`k − j − 1` within
    /// pair `(i, j)`'s stream), so a planned count over it draws the
    /// very same MG words a full sparse run would for those triples.
    /// This is the incremental engine's entry point: the created- and
    /// destroyed-triangle sets of a delta batch become plans here.
    ///
    /// Panics on unsorted, duplicate, degenerate, or out-of-range
    /// input — the delta layer produces canonical lists by
    /// construction, so a violation is a caller bug.
    pub fn from_triples(n: usize, triples: &[(u32, u32, u32)]) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut k_offsets = vec![0usize];
        let mut ks: Vec<u32> = Vec::new();
        for &(i, j, k) in triples {
            assert!(
                i < j && j < k && (k as usize) < n,
                "triple ({i},{j},{k}) is not i<j<k within n={n}"
            );
            if pairs.last() == Some(&(i, j)) {
                let prev = *ks.last().expect("pair exists, so its list is non-empty");
                assert!(prev < k, "triples must be sorted and unique");
                ks.push(k);
                *k_offsets.last_mut().expect("seeded with 0") = ks.len();
            } else {
                if let Some(&prev) = pairs.last() {
                    assert!(prev < (i, j), "triples must be sorted by (i, j)");
                }
                pairs.push((i, j));
                ks.push(k);
                k_offsets.push(ks.len());
            }
        }
        CandidateSet {
            n,
            pairs,
            k_offsets,
            ks,
        }
    }

    /// Vertex-space dimension the candidate pairs live in.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of candidate pairs with a non-empty `k`-list.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the structure admits no triple at all.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The `idx`-th candidate pair (lexicographic order).
    pub fn pair(&self, idx: usize) -> (u32, u32) {
        self.pairs[idx]
    }

    /// The `idx`-th pair's ascending `k`-list (never empty).
    pub fn ks(&self, idx: usize) -> &[u32] {
        &self.ks[self.k_offsets[idx]..self.k_offsets[idx + 1]]
    }

    /// Total triples the structure admits — the sparse schedule's
    /// whole workload.
    pub fn total_triples(&self) -> u64 {
        self.ks.len() as u64
    }
}

/// Which region of the `i < j < k` cube a [`CountScheduler`] covers.
#[derive(Debug, Clone, Default)]
pub enum SchedulePlan {
    /// Every triple — the fully oblivious default: the execution's
    /// shape reveals nothing but `n`.
    #[default]
    DenseCube,
    /// Only the triples a public [`CandidateSet`] admits. Reveals the
    /// candidate structure (and nothing else); turns the `O(n³)` cube
    /// into work linear in the candidate triple count.
    CandidatePairs(Arc<CandidateSet>),
    /// The same candidate triples as
    /// `CandidatePairs(CandidateSet::from_graph(g))` — same pairs, same
    /// `k`-lists, same chunk partition, bit-identical shares — but
    /// generated **lazily from the CSR prefix sums** instead of being
    /// materialised up front. [`CountScheduler::chunk_plan`] walks the
    /// chunk's pairs through [`CsrGraph::common_neighbors_above`] into
    /// a reusable scratch on demand, so a planned run's peak memory is
    /// O(chunk), never O(#candidate pairs) — the difference between a
    /// flat `Vec<(u32,u32)>` + concatenated `k`-lists and nothing at
    /// all when n ≈ 10⁶.
    ///
    /// The price is CPU, not memory: candidate generation (the sorted
    /// intersections) runs once per chunk-plan request instead of once
    /// total, plus twice at construction for the chunk partition. The
    /// stream-equivalence suite pins this plan's chunks, pair walk,
    /// and draws equal to the eager plan's.
    CsrStream(Arc<CsrGraph>),
}

/// A contiguous run of `(i, j)` pairs in schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairChunk {
    /// Chunk index — the tag its messages travel under in the sharded
    /// runtime.
    pub id: u32,
    /// First pair of the run.
    start: (u32, u32),
    /// Ordinal of the first pair within the schedule's pair list
    /// (index into [`CandidateSet`] for sparse plans).
    first: u32,
    /// Number of pairs in the run.
    pub pairs: u32,
    /// Total triples across the run (the chunk's work weight).
    pub triples: u64,
}

/// Iterator over one chunk's pairs in schedule order.
#[derive(Debug, Clone)]
pub struct PairIter {
    inner: PairIterInner,
}

#[derive(Debug, Clone)]
enum PairIterInner {
    Dense {
        n: usize,
        i: usize,
        j: usize,
        remaining: u32,
    },
    Sparse {
        cs: Arc<CandidateSet>,
        at: usize,
        end: usize,
    },
    /// Lazy candidate-pair walk over the CSR adjacency: resumes at
    /// `(i, pos)` (vertex, index into its neighbor slice) and yields
    /// pairs whose `k`-list is non-empty, tested by the early-exit
    /// intersection — no `k`-list is ever materialised here.
    Csr {
        csr: Arc<CsrGraph>,
        i: usize,
        pos: usize,
        remaining: u32,
    },
}

impl Iterator for PairIter {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        match &mut self.inner {
            PairIterInner::Dense {
                n,
                i,
                j,
                remaining,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let out = (*i, *j);
                // Advance to the next pair with a non-empty k range
                // (j ≤ n − 2 so that k = j + 1 exists).
                if *j < *n - 2 {
                    *j += 1;
                } else {
                    *i += 1;
                    *j = *i + 1;
                }
                Some(out)
            }
            PairIterInner::Sparse { cs, at, end } => {
                if at >= end {
                    return None;
                }
                let (i, j) = cs.pair(*at);
                *at += 1;
                Some((i as usize, j as usize))
            }
            PairIterInner::Csr {
                csr,
                i,
                pos,
                remaining,
            } => {
                if *remaining == 0 {
                    return None;
                }
                while *i < csr.n() {
                    let nei = csr.neighbors(*i);
                    while *pos < nei.len() {
                        let j = nei[*pos] as usize;
                        *pos += 1;
                        if j > *i && csr.has_common_neighbor_above(*i, j, j) {
                            *remaining -= 1;
                            return Some((*i, j));
                        }
                    }
                    *i += 1;
                    *pos = 0;
                }
                None
            }
        }
    }
}

/// Deterministic partition of the Count phase's `(i, j)` pair space.
#[derive(Debug, Clone)]
pub struct CountScheduler {
    n: usize,
    workers: usize,
    batch: usize,
    plan: SchedulePlan,
    chunks: Vec<PairChunk>,
    total_triples: u64,
}

impl CountScheduler {
    /// Builds the dense-cube schedule for an `n × n` matrix.
    ///
    /// * `threads` — worker threads; `0` means all cores.
    /// * `batch` — triples per round/block; `0` means
    ///   [`DEFAULT_COUNT_BATCH`].
    ///
    /// The share pairs produced under this schedule are identical for
    /// every `(threads, batch)` choice; only wall-clock and round
    /// granularity change.
    pub fn new(n: usize, threads: usize, batch: usize) -> Self {
        Self::with_plan(n, threads, batch, SchedulePlan::DenseCube)
    }

    /// Builds the schedule for an explicit [`SchedulePlan`].
    ///
    /// For [`SchedulePlan::CandidatePairs`] the candidate set's `n`
    /// must match (it indexes the same share matrix).
    pub fn with_plan(n: usize, threads: usize, batch: usize, plan: SchedulePlan) -> Self {
        match &plan {
            SchedulePlan::DenseCube => {}
            SchedulePlan::CandidatePairs(cs) => {
                assert_eq!(cs.n(), n, "candidate set dimension must match the matrix");
            }
            SchedulePlan::CsrStream(csr) => {
                assert_eq!(csr.n(), n, "candidate set dimension must match the matrix");
            }
        }
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .max(1);
        // Clamp to the longest possible k range (n − 2 triples, for
        // pair (0, 1)): blocks are already `min(range, batch)`, so
        // larger values change nothing except the size of the
        // per-chunk word buffer — and an unchecked `--batch` must not
        // drive a multi-gigabyte allocation.
        let batch =
            if batch == 0 { DEFAULT_COUNT_BATCH } else { batch }.min(n.saturating_sub(2).max(1));
        let (total_triples, chunks) = match &plan {
            SchedulePlan::DenseCube => {
                let total = if n < 3 {
                    0
                } else {
                    (n as u64) * (n as u64 - 1) * (n as u64 - 2) / 6
                };
                (total, build_chunks(n, total))
            }
            SchedulePlan::CandidatePairs(cs) => {
                (cs.total_triples(), build_sparse_chunks(cs))
            }
            SchedulePlan::CsrStream(csr) => build_csr_chunks(csr),
        };
        CountScheduler {
            n,
            workers,
            batch,
            plan,
            chunks,
            total_triples,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resolved worker count (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Resolved batch size (≥ 1).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The chunk list (empty when the schedule admits no triple).
    pub fn chunks(&self) -> &[PairChunk] {
        &self.chunks
    }

    /// Every triple the schedule covers exactly once — `C(n, 3)` for
    /// the dense cube, the candidate structure's admitted-triple count
    /// for a sparse plan.
    pub fn total_triples(&self) -> u64 {
        self.total_triples
    }

    /// The schedule's plan.
    pub fn plan(&self) -> &SchedulePlan {
        &self.plan
    }

    /// The candidate structure, when this is an **eager** sparse
    /// schedule. A [`SchedulePlan::CsrStream`] schedule is sparse too
    /// but deliberately never materialises one — use
    /// [`Self::stream_graph`] and compute per-pair `k`-lists on
    /// demand.
    pub fn candidates(&self) -> Option<&Arc<CandidateSet>> {
        match &self.plan {
            SchedulePlan::DenseCube | SchedulePlan::CsrStream(_) => None,
            SchedulePlan::CandidatePairs(cs) => Some(cs),
        }
    }

    /// The CSR adjacency backing a streamed sparse schedule.
    pub fn stream_graph(&self) -> Option<&Arc<CsrGraph>> {
        match &self.plan {
            SchedulePlan::CsrStream(csr) => Some(csr),
            _ => None,
        }
    }

    /// The chunk's offline preprocessing plan: one [`MgDraw`] per pair
    /// and maximal contiguous `k`-run, **at the run's canonical stream
    /// offset** (`k₀ − j − 1`). For the dense cube every pair is one
    /// full-range draw starting at offset 0; a sparse plan draws each
    /// surviving run exactly where the dense cube would have, skipping
    /// (for free — the dealer PRG seeks in `O(1)`) everything between.
    /// Single source of truth for every consumer of the chunk-keyed OT
    /// sessions (fast kernel, sharded runtime, ledger fixtures) — the
    /// sampled estimator builds its sparser plan from the public coins
    /// instead.
    pub fn chunk_plan(&self, chunk: &PairChunk) -> Vec<MgDraw> {
        match &self.plan {
            SchedulePlan::DenseCube => self
                .pair_iter(chunk)
                .map(|(i, j)| MgDraw::dense(i as u32, j as u32, (self.n - j - 1) as u32))
                .collect(),
            SchedulePlan::CandidatePairs(cs) => {
                let mut draws = Vec::new();
                for idx in self.chunk_pair_range(chunk) {
                    let (i, j) = cs.pair(idx);
                    push_runs(&mut draws, i, j, cs.ks(idx));
                }
                draws
            }
            SchedulePlan::CsrStream(csr) => {
                // Regenerate exactly this chunk's candidates from the
                // prefix sums: the walk resumes at `chunk.start` and
                // the `k`-lists live only in the walker's scratch.
                let mut draws = Vec::new();
                let mut left = chunk.pairs;
                walk_csr_pairs(csr, chunk.start, |i, j, ks| {
                    push_runs(&mut draws, i, j, ks);
                    left -= 1;
                    left > 0
                });
                draws
            }
        }
    }

    /// Ordinals of `chunk`'s pairs within the schedule's pair list
    /// (indices into the [`CandidateSet`] for sparse plans).
    pub fn chunk_pair_range(&self, chunk: &PairChunk) -> std::ops::Range<usize> {
        chunk.first as usize..chunk.first as usize + chunk.pairs as usize
    }

    /// Iterates `chunk`'s pairs in schedule order.
    pub fn pair_iter(&self, chunk: &PairChunk) -> PairIter {
        PairIter {
            inner: match &self.plan {
                SchedulePlan::DenseCube => PairIterInner::Dense {
                    n: self.n,
                    i: chunk.start.0 as usize,
                    j: chunk.start.1 as usize,
                    remaining: chunk.pairs,
                },
                SchedulePlan::CandidatePairs(cs) => PairIterInner::Sparse {
                    cs: Arc::clone(cs),
                    at: chunk.first as usize,
                    end: chunk.first as usize + chunk.pairs as usize,
                },
                SchedulePlan::CsrStream(csr) => {
                    let i = chunk.start.0 as usize;
                    let pos = if i < csr.n() {
                        csr.neighbors(i).partition_point(|&x| x < chunk.start.1)
                    } else {
                        0
                    };
                    PairIterInner::Csr {
                        csr: Arc::clone(csr),
                        i,
                        pos,
                        remaining: chunk.pairs,
                    }
                }
            },
        }
    }

    /// Runs `work` over every chunk on the scheduler's worker pool
    /// (scoped threads pulling chunk indices from an atomic queue) and
    /// returns the per-chunk results in chunk order. With one worker —
    /// or one chunk — everything runs inline on the caller's thread.
    pub fn run_chunks<R, F>(&self, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&PairChunk) -> R + Sync,
    {
        let chunks = &self.chunks;
        let spawn = self.workers.min(chunks.len());
        if spawn <= 1 {
            return chunks.iter().map(work).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(chunks.len()));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spawn)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= chunks.len() {
                                break;
                            }
                            local.push((idx, work(&chunks[idx])));
                        }
                        slots.lock().expect("result lock poisoned").extend(local);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("count worker panicked");
            }
        });
        let mut collected = slots.into_inner().expect("result lock poisoned");
        collected.sort_by_key(|(idx, _)| *idx);
        collected.into_iter().map(|(_, r)| r).collect()
    }
}

/// Appends one [`MgDraw`] per maximal contiguous run of `ks` for pair
/// `(i, j)`, each at its canonical stream offset `k₀ − j − 1`.
pub(crate) fn push_runs(draws: &mut Vec<MgDraw>, i: u32, j: u32, ks: &[u32]) {
    let mut r = 0;
    while r < ks.len() {
        let mut end = r + 1;
        while end < ks.len() && ks[end] == ks[end - 1] + 1 {
            end += 1;
        }
        draws.push(MgDraw {
            i,
            j,
            start: ks[r] - j - 1,
            groups: (end - r) as u32,
        });
        r = end;
    }
}

/// Cuts the lexicographic pair walk into chunks of roughly
/// `total / CHUNK_PARTS` triples each (floored at
/// [`MIN_CHUNK_TRIPLES`]). Depends only on `n` — see [`CHUNK_PARTS`]
/// for why worker count must not leak in.
fn build_chunks(n: usize, total_triples: u64) -> Vec<PairChunk> {
    if n < 3 {
        return Vec::new();
    }
    let target = (total_triples / CHUNK_PARTS).max(MIN_CHUNK_TRIPLES);
    let mut chunks = Vec::new();
    let mut start: Option<(u32, u32)> = None;
    let mut first = 0u32;
    let mut ordinal = 0u32;
    let mut pairs = 0u32;
    let mut triples = 0u64;
    for i in 0..=(n - 3) {
        for j in (i + 1)..=(n - 2) {
            if start.is_none() {
                start = Some((i as u32, j as u32));
                first = ordinal;
            }
            ordinal += 1;
            pairs += 1;
            triples += (n - j - 1) as u64;
            if triples >= target {
                chunks.push(PairChunk {
                    id: chunks.len() as u32,
                    start: start.take().expect("chunk start set"),
                    first,
                    pairs,
                    triples,
                });
                pairs = 0;
                triples = 0;
            }
        }
    }
    if let Some(start) = start {
        chunks.push(PairChunk {
            id: chunks.len() as u32,
            start,
            first,
            pairs,
            triples,
        });
    }
    chunks
}

/// The sparse analogue of [`build_chunks`]: packs candidate pairs, in
/// order, into chunks of roughly `total / CHUNK_PARTS` triples
/// (floored at [`MIN_CHUNK_TRIPLES`]). A pure function of the
/// candidate list, for the same reason the dense partition is a pure
/// function of `n`.
fn build_sparse_chunks(cs: &CandidateSet) -> Vec<PairChunk> {
    if cs.is_empty() {
        return Vec::new();
    }
    let target = (cs.total_triples() / CHUNK_PARTS).max(MIN_CHUNK_TRIPLES);
    let mut chunks = Vec::new();
    let mut first: Option<usize> = None;
    let mut pairs = 0u32;
    let mut triples = 0u64;
    for idx in 0..cs.len() {
        if first.is_none() {
            first = Some(idx);
        }
        pairs += 1;
        triples += cs.ks(idx).len() as u64;
        if triples >= target {
            let f = first.take().expect("chunk start set");
            chunks.push(PairChunk {
                id: chunks.len() as u32,
                start: cs.pair(f),
                first: f as u32,
                pairs,
                triples,
            });
            pairs = 0;
            triples = 0;
        }
    }
    if let Some(f) = first {
        chunks.push(PairChunk {
            id: chunks.len() as u32,
            start: cs.pair(f),
            first: f as u32,
            pairs,
            triples,
        });
    }
    chunks
}

/// Streams the candidate pairs of `csr` — in exactly the order
/// [`CandidateSet::from_graph`] would list them — starting at pair
/// `from` (inclusive), calling `f(i, j, ks)` with each pair's
/// non-empty ascending `k`-list. The list lives in one reusable
/// scratch buffer; `f` returning `false` stops the walk. This is the
/// whole streaming machinery: chunk construction, chunk plans, and
/// the sampled path's per-pair candidates all reduce to it.
fn walk_csr_pairs(csr: &CsrGraph, from: (u32, u32), mut f: impl FnMut(u32, u32, &[u32]) -> bool) {
    let n = csr.n();
    let mut ks: Vec<u32> = Vec::new();
    let (i0, j0) = (from.0 as usize, from.1);
    for i in i0..n {
        let nei = csr.neighbors(i);
        // Candidate pairs need j > i; the resume point additionally
        // clips the first vertex's neighbor slice at j₀.
        let floor = if i == i0 { j0.max(i as u32 + 1) } else { i as u32 + 1 };
        let at = nei.partition_point(|&x| x < floor);
        for &j in &nei[at..] {
            ks.clear();
            csr.common_neighbors_above(i, j as usize, j as usize, &mut ks);
            if !ks.is_empty() && !f(i as u32, j, &ks) {
                return;
            }
        }
    }
}

/// The streaming analogue of [`build_sparse_chunks`]: two passes over
/// the lazy candidate walk — one to total the triples (the cut target
/// needs it), one to cut — instead of one pass over a materialised
/// [`CandidateSet`]. Costs a second round of sorted intersections;
/// buys never holding the pair list. Produces the **identical** chunk
/// list (same cut logic, same candidate order), which the
/// stream-equivalence tests pin — chunk ids key the amortised OT
/// offline sessions, so the two sparse plans must agree chunk for
/// chunk.
fn build_csr_chunks(csr: &CsrGraph) -> (u64, Vec<PairChunk>) {
    let mut total = 0u64;
    walk_csr_pairs(csr, (0, 0), |_, _, ks| {
        total += ks.len() as u64;
        true
    });
    if total == 0 {
        return (0, Vec::new());
    }
    let target = (total / CHUNK_PARTS).max(MIN_CHUNK_TRIPLES);
    let mut chunks = Vec::new();
    let mut start: Option<(u32, u32)> = None;
    let mut first = 0u32;
    let mut ordinal = 0u32;
    let mut pairs = 0u32;
    let mut triples = 0u64;
    walk_csr_pairs(csr, (0, 0), |i, j, ks| {
        if start.is_none() {
            start = Some((i, j));
            first = ordinal;
        }
        ordinal += 1;
        pairs += 1;
        triples += ks.len() as u64;
        if triples >= target {
            chunks.push(PairChunk {
                id: chunks.len() as u32,
                start: start.take().expect("chunk start set"),
                first,
                pairs,
                triples,
            });
            pairs = 0;
            triples = 0;
        }
        true
    });
    if let Some(start) = start {
        chunks.push(PairChunk {
            id: chunks.len() as u32,
            start,
            first,
            pairs,
            triples,
        });
    }
    (total, chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cargo_graph::generators;

    /// Every pair exactly once, in order, with the right weights.
    fn check_cover(n: usize, workers: usize) {
        let sched = CountScheduler::new(n, workers, 0);
        let mut seen = Vec::new();
        let mut triples = 0u64;
        for c in sched.chunks() {
            let got: Vec<_> = sched.pair_iter(c).collect();
            assert_eq!(got.len(), c.pairs as usize, "pair count of chunk {}", c.id);
            triples += c.triples;
            seen.extend(got);
        }
        let mut want = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if j + 1 < n {
                    want.push((i, j));
                }
            }
        }
        assert_eq!(seen, want, "n={n} workers={workers}");
        assert_eq!(triples, sched.total_triples());
    }

    #[test]
    fn chunks_cover_the_pair_space_exactly_once() {
        for n in [0usize, 1, 2, 3, 4, 5, 17, 64, 101] {
            for workers in [1usize, 2, 4, 7] {
                check_cover(n, workers);
            }
        }
    }

    #[test]
    fn chunk_weights_are_balanced() {
        let sched = CountScheduler::new(200, 4, 0);
        assert!(sched.chunks().len() >= 8, "oversubscribed chunking");
        let max = sched.chunks().iter().map(|c| c.triples).max().unwrap();
        let target = sched.total_triples() / sched.chunks().len() as u64;
        // No chunk should dominate: the last pair of a chunk can
        // overshoot by at most one pair's weight (< n triples).
        assert!(max <= target + 200, "max {max} vs target {target}");
    }

    #[test]
    fn chunk_list_is_independent_of_workers_and_batch() {
        // The chunk partition is keyed into the amortised offline
        // sessions, so it must be a function of n alone.
        for n in [5usize, 40, 150] {
            let base = CountScheduler::new(n, 1, 0);
            for (workers, batch) in [(2usize, 1usize), (4, 7), (16, 64), (0, 0)] {
                let other = CountScheduler::new(n, workers, batch);
                assert_eq!(other.chunks(), base.chunks(), "n={n} w={workers}");
            }
        }
    }

    #[test]
    fn small_inputs_use_few_coarse_chunks() {
        // The 512-triple floor keeps tiny pair spaces from shattering
        // into near-per-pair chunks (each chunk is one OT session).
        let sched = CountScheduler::new(24, 4, 0); // C(24,3) = 2024
        assert!(sched.chunks().len() <= 4, "{} chunks", sched.chunks().len());
    }

    #[test]
    fn zero_knobs_resolve_to_defaults() {
        let sched = CountScheduler::new(100, 0, 0);
        assert!(sched.workers() >= 1);
        assert_eq!(sched.batch(), DEFAULT_COUNT_BATCH);
    }

    #[test]
    fn oversized_batch_is_clamped_to_the_longest_k_range() {
        // The longest k range belongs to pair (0, 1): n − 2 triples.
        // Blocks are min(range, batch), so anything larger only
        // inflates the word buffer; usize::MAX must not drive the
        // allocation. (This clamp used to be n, two blocks too wide —
        // pinned here so it stays the documented n − 2.)
        let sched = CountScheduler::new(10, 1, usize::MAX);
        assert_eq!(sched.batch(), 8);
        assert_eq!(CountScheduler::new(10, 1, usize::MAX).batch(), 8);
        assert_eq!(CountScheduler::new(10, 1, 4).batch(), 4);
        assert_eq!(CountScheduler::new(0, 1, 0).batch(), 1);
        assert_eq!(CountScheduler::new(2, 1, 64).batch(), 1);
    }

    #[test]
    fn tiny_n_has_no_chunks() {
        for n in 0..3 {
            let sched = CountScheduler::new(n, 4, 8);
            assert!(sched.chunks().is_empty());
            assert_eq!(sched.total_triples(), 0);
        }
    }

    #[test]
    fn run_chunks_preserves_chunk_order() {
        let sched = CountScheduler::new(60, 3, 0);
        let ids = sched.run_chunks(|c| c.id);
        let want: Vec<u32> = (0..sched.chunks().len() as u32).collect();
        assert_eq!(ids, want);
    }

    // ------------------------------------------------------ sparse --

    #[test]
    fn candidate_set_from_graph_lists_exactly_the_triangles_of_the_support() {
        // Diamond: triangles (0,1,2) and (1,2,3).
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        let cs = CandidateSet::from_graph(&g);
        assert_eq!(cs.n(), 4);
        assert_eq!(cs.total_triples(), 2);
        let listed: Vec<_> = (0..cs.len())
            .flat_map(|p| {
                let (i, j) = cs.pair(p);
                cs.ks(p).iter().map(move |&k| (i, j, k)).collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(listed, vec![(0, 1, 2), (1, 2, 3)]);
        // Pairs without a closing candidate are dropped entirely.
        assert!((0..cs.len()).all(|p| !cs.ks(p).is_empty()));
    }

    #[test]
    fn complete_candidate_set_degenerates_to_the_dense_cube() {
        for n in [0usize, 1, 2, 3, 4, 5, 12] {
            let cs = CandidateSet::complete(n);
            let dense = CountScheduler::new(n, 1, 0);
            let sparse =
                CountScheduler::with_plan(n, 1, 0, SchedulePlan::CandidatePairs(Arc::new(cs)));
            assert_eq!(sparse.total_triples(), dense.total_triples(), "n={n}");
            let dense_pairs: Vec<_> = dense
                .chunks()
                .iter()
                .flat_map(|c| dense.pair_iter(c))
                .collect();
            let sparse_pairs: Vec<_> = sparse
                .chunks()
                .iter()
                .flat_map(|c| sparse.pair_iter(c))
                .collect();
            assert_eq!(sparse_pairs, dense_pairs, "n={n}");
            // Same plans per chunk too: one full-range draw per pair.
            let dense_plan: Vec<_> = dense
                .chunks()
                .iter()
                .flat_map(|c| dense.chunk_plan(c))
                .collect();
            let sparse_plan: Vec<_> = sparse
                .chunks()
                .iter()
                .flat_map(|c| sparse.chunk_plan(c))
                .collect();
            assert_eq!(sparse_plan, dense_plan, "n={n}");
        }
    }

    #[test]
    fn sparse_plans_draw_runs_at_canonical_offsets() {
        let mut draws = Vec::new();
        // Pair (2, 5) with ks = [6, 7, 9, 12, 13]: runs [6,7], [9], [12,13].
        push_runs(&mut draws, 2, 5, &[6, 7, 9, 12, 13]);
        assert_eq!(
            draws,
            vec![
                MgDraw { i: 2, j: 5, start: 0, groups: 2 },
                MgDraw { i: 2, j: 5, start: 3, groups: 1 },
                MgDraw { i: 2, j: 5, start: 6, groups: 2 },
            ]
        );
    }

    #[test]
    fn sparse_chunks_cover_the_candidate_list_exactly_once() {
        let g = generators::erdos_renyi(80, 0.15, 11);
        let cs = Arc::new(CandidateSet::from_graph(&g));
        let sched =
            CountScheduler::with_plan(80, 3, 0, SchedulePlan::CandidatePairs(Arc::clone(&cs)));
        let mut seen = Vec::new();
        let mut triples = 0u64;
        for c in sched.chunks() {
            let got: Vec<_> = sched.pair_iter(c).collect();
            assert_eq!(got.len(), c.pairs as usize);
            assert_eq!(
                got.first().copied(),
                Some((cs.pair(c.first as usize).0 as usize, cs.pair(c.first as usize).1 as usize))
            );
            triples += c.triples;
            seen.extend(got);
        }
        let want: Vec<_> = (0..cs.len())
            .map(|p| (cs.pair(p).0 as usize, cs.pair(p).1 as usize))
            .collect();
        assert_eq!(seen, want);
        assert_eq!(triples, cs.total_triples());
        // Plans cover each admitted triple exactly once, in order.
        let mut plan_triples = 0u64;
        for c in sched.chunks() {
            for d in sched.chunk_plan(c) {
                plan_triples += d.groups as u64;
            }
        }
        assert_eq!(plan_triples, cs.total_triples());
    }

    #[test]
    fn sparse_chunking_is_independent_of_workers_and_batch() {
        let g = generators::erdos_renyi(60, 0.2, 3);
        let cs = Arc::new(CandidateSet::from_graph(&g));
        let base =
            CountScheduler::with_plan(60, 1, 0, SchedulePlan::CandidatePairs(Arc::clone(&cs)));
        for (workers, batch) in [(2usize, 1usize), (4, 7), (0, 0)] {
            let other = CountScheduler::with_plan(
                60,
                workers,
                batch,
                SchedulePlan::CandidatePairs(Arc::clone(&cs)),
            );
            assert_eq!(other.chunks(), base.chunks());
        }
    }

    #[test]
    fn csr_stream_schedule_equals_the_eager_sparse_schedule() {
        // The streamed plan must be indistinguishable from the eager
        // one at the scheduler level: same chunk list (ids key OT
        // sessions), same pair walk, same draws at the same canonical
        // offsets — lazily regenerated instead of stored.
        for (n, p, seed) in [(3usize, 0.9, 1u64), (30, 0.05, 2), (80, 0.15, 11), (60, 0.4, 5)] {
            let g = generators::erdos_renyi(n, p, seed);
            let cs = Arc::new(CandidateSet::from_graph(&g));
            let csr = Arc::new(CsrGraph::from_graph(&g));
            let eager =
                CountScheduler::with_plan(n, 3, 0, SchedulePlan::CandidatePairs(cs));
            let streamed =
                CountScheduler::with_plan(n, 3, 0, SchedulePlan::CsrStream(csr));
            assert_eq!(streamed.chunks(), eager.chunks(), "n={n} seed={seed}");
            assert_eq!(streamed.total_triples(), eager.total_triples());
            for (sc, ec) in streamed.chunks().iter().zip(eager.chunks()) {
                assert_eq!(
                    streamed.pair_iter(sc).collect::<Vec<_>>(),
                    eager.pair_iter(ec).collect::<Vec<_>>(),
                    "n={n} chunk={}",
                    sc.id
                );
                assert_eq!(
                    streamed.chunk_plan(sc),
                    eager.chunk_plan(ec),
                    "n={n} chunk={}",
                    sc.id
                );
            }
        }
    }

    #[test]
    fn csr_stream_with_no_triangles_has_no_chunks() {
        // A path graph has candidate pairs but no closing k anywhere:
        // the streamed schedule must collapse to zero chunks, exactly
        // like the eager one drops empty-k pairs.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let sched = CountScheduler::with_plan(
            5,
            2,
            0,
            SchedulePlan::CsrStream(Arc::new(CsrGraph::from_graph(&g))),
        );
        assert!(sched.chunks().is_empty());
        assert_eq!(sched.total_triples(), 0);
    }

    #[test]
    #[should_panic(expected = "candidate set dimension")]
    fn mismatched_stream_dimension_panics() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let csr = Arc::new(CsrGraph::from_graph(&g));
        CountScheduler::with_plan(6, 1, 0, SchedulePlan::CsrStream(csr));
    }

    #[test]
    #[should_panic(expected = "candidate set dimension")]
    fn mismatched_candidate_dimension_panics() {
        let cs = Arc::new(CandidateSet::complete(5));
        CountScheduler::with_plan(6, 1, 0, SchedulePlan::CandidatePairs(cs));
    }

    #[test]
    fn from_triples_reproduces_from_graph() {
        // Enumerating a graph's triangles and handing them to
        // `from_triples` must rebuild the exact structure `from_graph`
        // derives — same pairs, same k-lists, same stream offsets.
        let g = generators::erdos_renyi(40, 0.25, 11);
        let cs = CandidateSet::from_graph(&g);
        let mut triples = Vec::new();
        for idx in 0..cs.len() {
            let (i, j) = cs.pair(idx);
            for &k in cs.ks(idx) {
                triples.push((i, j, k));
            }
        }
        assert_eq!(CandidateSet::from_triples(40, &triples), cs);
        assert!(CandidateSet::from_triples(40, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn from_triples_rejects_duplicates() {
        CandidateSet::from_triples(5, &[(0, 1, 2), (0, 1, 2)]);
    }
}
