//! Crash-safe continuous release: the epoch journal and replay.
//!
//! Serve mode's durability contract is **commit-then-publish**: after
//! an epoch's release opens, the party appends one record — committed
//! epoch id, cumulative ε spent, and a digest of the post-epoch public
//! state — to an append-only [`EpochJournal`] (flushed and fsynced)
//! *before* printing the epoch's transcript line. A crash at any frame
//! therefore loses at most the in-flight epoch, whose grant was never
//! durably spent.
//!
//! Restart is pure recomputation, not state restore: because every
//! triple draws its preprocessing material at a canonical dealer-stream
//! offset and both parties build the full graph from the same public
//! deltas, [`replay_committed`] reruns the delta script *locally*
//! (zero wire traffic) and lands bit-identically on the pre-crash
//! session state — shares, accountant, and per-epoch outcomes. The
//! journal records are verified against the replay as it goes, so a
//! journal that disagrees with the deterministic recomputation (edited
//! script, wrong seed, different binary) fails typed instead of
//! silently double-spending ε or forking the release transcript.
//!
//! The file format is line-oriented text: a header line pinning the
//! config fingerprint, then one record per committed epoch. ε values
//! are stored as exact `f64` bit patterns (hex), never decimal — the
//! no-double-spend check is bit-level. A torn trailing line (crash
//! mid-append: no terminating newline) is ignored, which is exactly
//! the commit-then-publish semantics: an unterminated record was never
//! acknowledged.

use crate::config::CargoConfig;
use crate::delta::EdgeDelta;
use crate::session::{EpochOutcome, Session};
use cargo_graph::Graph;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic + version of the journal file format.
const JOURNAL_MAGIC: &str = "cargo-journal v1";

/// Digest of a session's public post-epoch state: the committed epoch
/// count and the live edge set. Role-independent (both parties build
/// the same graph from the public deltas), so it doubles as the
/// epoch-commit handshake's agreement check and the journal's replay
/// verification.
pub fn state_digest(epochs: u64, graph: &Graph) -> u64 {
    fn mix(h: u64, w: u64) -> u64 {
        // splitmix64 over a running fold — every input word diffuses
        // through the whole state.
        let mut z = (h ^ w).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = mix(0x43A5_2D0A_8E5D_9B11, epochs);
    h = mix(h, graph.n() as u64);
    for (u, v) in graph.edges() {
        h = mix(h, ((u as u64) << 32) | v as u64);
    }
    h
}

/// One committed-epoch record of an [`EpochJournal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// 1-based committed epoch id.
    pub epoch: u64,
    /// Cumulative ε spent after this release (exact bit pattern).
    pub spent: f64,
    /// [`state_digest`] of the post-epoch session state.
    pub digest: u64,
}

/// Why journaling or recovery failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// Filesystem trouble reading or writing the journal.
    Io(String),
    /// [`EpochJournal::create`] found a journal already at the path.
    /// Overwriting would destroy the durable ε-spend record and
    /// double-spend the budget, so starting fresh over an existing
    /// journal must be an explicit operator action.
    Exists {
        /// The journal that already exists.
        path: PathBuf,
    },
    /// The journal's header line is missing, malformed, or pins a
    /// different config fingerprint than this run's.
    Header(String),
    /// A (non-trailing) record line failed to parse or broke the
    /// strictly-sequential epoch-id invariant.
    Record {
        /// 1-based line number in the journal file.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The deterministic replay disagreed with a journal record — the
    /// script, seed, or binary changed under the journal.
    Mismatch {
        /// The epoch whose record failed verification.
        epoch: u64,
        /// Which field disagreed.
        message: String,
    },
    /// The journal commits more epochs than the delta script holds.
    ScriptTooShort {
        /// Epochs the journal committed.
        committed: u64,
        /// Epoch batches the script parses to.
        epochs: usize,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "journal io: {e}"),
            RecoveryError::Exists { path } => write!(
                f,
                "journal {} already exists; pass --resume to continue it, \
                 or delete it explicitly to start fresh (overwriting would \
                 destroy the durable \u{3b5}-spend record)",
                path.display()
            ),
            RecoveryError::Header(e) => write!(f, "journal header: {e}"),
            RecoveryError::Record { line, message } => {
                write!(f, "journal line {line}: {message}")
            }
            RecoveryError::Mismatch { epoch, message } => {
                write!(f, "replay of epoch {epoch} disagrees with the journal: {message}")
            }
            RecoveryError::ScriptTooShort { committed, epochs } => write!(
                f,
                "journal committed {committed} epochs but the script holds only {epochs}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e.to_string())
    }
}

/// The append-only committed-epoch journal of one serve run.
#[derive(Debug)]
pub struct EpochJournal {
    path: PathBuf,
    file: File,
    records: Vec<EpochRecord>,
}

/// The config fingerprint pinned in the header line: every knob that
/// participates in the deterministic replay.
fn header_line(cfg: &CargoConfig, n: usize) -> String {
    format!(
        "{JOURNAL_MAGIC} seed={} epsilon={:#018x} horizon={} composition={} frac_bits={} n={n}\n",
        cfg.seed,
        cfg.epsilon.to_bits(),
        cfg.horizon,
        cfg.composition,
        cfg.frac_bits,
    )
}

impl EpochJournal {
    /// Starts a fresh journal at `path` with the config fingerprint in
    /// the header. Refuses ([`RecoveryError::Exists`]) if a journal is
    /// already there — a restarted operator who forgot `--resume` must
    /// not silently wipe the durable commit record and re-spend ε
    /// against epochs the destroyed journal already published.
    pub fn create(path: &Path, cfg: &CargoConfig, n: usize) -> Result<Self, RecoveryError> {
        let mut file = match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                return Err(RecoveryError::Exists {
                    path: path.to_path_buf(),
                })
            }
            Err(e) => return Err(e.into()),
        };
        file.write_all(header_line(cfg, n).as_bytes())?;
        file.sync_all()?;
        Ok(EpochJournal {
            path: path.to_path_buf(),
            file,
            records: Vec::new(),
        })
    }

    /// Opens an existing journal for resumption: validates the header
    /// against this run's config, parses the committed records,
    /// truncates a torn trailing line (crash mid-append), and reopens
    /// in append mode.
    pub fn resume(path: &Path, cfg: &CargoConfig, n: usize) -> Result<Self, RecoveryError> {
        let mut content = String::new();
        File::open(path)?.read_to_string(&mut content)?;
        let want_header = header_line(cfg, n);
        let mut lines: Vec<&str> = content.split('\n').collect();
        // `split` leaves one trailing element: empty when the content
        // ends with a newline, otherwise the torn unterminated record
        // — either way it was never acknowledged, so it is dropped.
        let torn = lines.pop().unwrap_or_default();
        let mut records = Vec::new();
        for (idx, line) in lines.iter().enumerate() {
            if idx == 0 {
                if *line != want_header.trim_end_matches('\n') {
                    return Err(RecoveryError::Header(format!(
                        "journal pins {line:?}, this run is {:?}",
                        want_header.trim_end_matches('\n')
                    )));
                }
                continue;
            }
            let rec = parse_record(line).map_err(|message| RecoveryError::Record {
                line: idx + 1,
                message,
            })?;
            let want_epoch = records.len() as u64 + 1;
            if rec.epoch != want_epoch {
                return Err(RecoveryError::Record {
                    line: idx + 1,
                    message: format!("epoch {} out of sequence (want {want_epoch})", rec.epoch),
                });
            }
            records.push(rec);
        }
        if lines.is_empty() {
            return Err(RecoveryError::Header("journal file is empty".into()));
        }
        let file = OpenOptions::new().append(true).open(path)?;
        if !torn.is_empty() {
            // The torn bytes must not stay on disk: the next append
            // would concatenate onto the unterminated partial line,
            // leaving that committed epoch's record unparseable and
            // every later resume failing. Cut the file back to the
            // validated header + complete-records prefix (append-mode
            // writes land at the *current* EOF, so later appends start
            // exactly here).
            let parsed_len = (content.len() - torn.len()) as u64;
            file.set_len(parsed_len)?;
            file.sync_all()?;
        }
        Ok(EpochJournal {
            path: path.to_path_buf(),
            file,
            records,
        })
    }

    /// Appends one committed-epoch record, durably (flush + fsync)
    /// *before* returning — the commit-then-publish barrier.
    pub fn append(&mut self, record: EpochRecord) -> Result<(), RecoveryError> {
        let want = self.records.len() as u64 + 1;
        if record.epoch != want {
            return Err(RecoveryError::Mismatch {
                epoch: record.epoch,
                message: format!("append out of sequence (journal is at {want})"),
            });
        }
        let line = format!(
            "epoch={} spent={:#018x} digest={:#018x}\n",
            record.epoch,
            record.spent.to_bits(),
            record.digest
        );
        self.file.write_all(line.as_bytes())?;
        self.file.sync_all()?;
        self.records.push(record);
        Ok(())
    }

    /// The committed records, in epoch order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// The last committed epoch id (0 if none).
    pub fn committed(&self) -> u64 {
        self.records.len() as u64
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn parse_record(line: &str) -> Result<EpochRecord, String> {
    let mut epoch = None;
    let mut spent = None;
    let mut digest = None;
    for field in line.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("bad field {field:?}"))?;
        let hex_u64 = |v: &str| {
            v.strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(|| format!("bad hex value {v:?}"))
        };
        match key {
            "epoch" => epoch = Some(value.parse::<u64>().map_err(|e| e.to_string())?),
            "spent" => spent = Some(f64::from_bits(hex_u64(value)?)),
            "digest" => digest = Some(hex_u64(value)?),
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    match (epoch, spent, digest) {
        (Some(epoch), Some(spent), Some(digest)) => Ok(EpochRecord {
            epoch,
            spent,
            digest,
        }),
        _ => Err("missing field (want epoch, spent, digest)".into()),
    }
}

/// Replays the first `journal.committed()` epoch batches of `script`
/// locally and verifies each against its journal record.
///
/// Zero wire traffic: the canonical-offset determinism means the local
/// [`Session`] recomputes the exact pre-crash state — the returned
/// session holds the live shares and the re-armed accountant (so no ε
/// is ever spent twice), and the returned outcomes are bit-identical
/// to the ones the crashed run published (a resumed transcript diffs
/// clean against an uninterrupted one).
pub fn replay_committed(
    graph: Graph,
    cfg: &CargoConfig,
    script: &[Vec<EdgeDelta>],
    journal: &EpochJournal,
) -> Result<(Session, Vec<EpochOutcome>), RecoveryError> {
    let mut session = Session::new(graph, cfg);
    let outcomes = replay_committed_on(&mut session, script, journal)?;
    Ok((session, outcomes))
}

/// [`replay_committed`] over a caller-built fresh [`Session`] — for
/// callers that need the pristine baseline state (e.g. to print the
/// baseline transcript line) before any committed epoch is replayed.
/// `session` must not have stepped yet.
pub fn replay_committed_on(
    session: &mut Session,
    script: &[Vec<EdgeDelta>],
    journal: &EpochJournal,
) -> Result<Vec<EpochOutcome>, RecoveryError> {
    let committed = journal.committed();
    if (script.len() as u64) < committed {
        return Err(RecoveryError::ScriptTooShort {
            committed,
            epochs: script.len(),
        });
    }
    let mut outcomes = Vec::with_capacity(committed as usize);
    for record in journal.records() {
        let batch = &script[(record.epoch - 1) as usize];
        let out = session.step(batch).map_err(|e| RecoveryError::Mismatch {
            epoch: record.epoch,
            message: format!("replay failed: {e}"),
        })?;
        if out.epoch != record.epoch {
            return Err(RecoveryError::Mismatch {
                epoch: record.epoch,
                message: format!("replay produced epoch {}", out.epoch),
            });
        }
        if out.spent.to_bits() != record.spent.to_bits() {
            return Err(RecoveryError::Mismatch {
                epoch: record.epoch,
                message: format!(
                    "ε spent {:#018x} != journal {:#018x}",
                    out.spent.to_bits(),
                    record.spent.to_bits()
                ),
            });
        }
        let digest = state_digest(session.counter().epochs(), session.counter().graph());
        if digest != record.digest {
            return Err(RecoveryError::Mismatch {
                epoch: record.epoch,
                message: format!("state digest {digest:#018x} != journal {:#018x}", record.digest),
            });
        }
        outcomes.push(out);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::EdgeDelta;
    use cargo_graph::generators;

    fn cfg() -> CargoConfig {
        CargoConfig::new(2.0).with_seed(11).with_horizon(4)
    }

    fn script() -> Vec<Vec<EdgeDelta>> {
        vec![
            vec![EdgeDelta::Add(0, 1), EdgeDelta::Add(1, 2), EdgeDelta::Add(0, 2)],
            vec![EdgeDelta::Remove(0, 1)],
            vec![],
        ]
    }

    #[test]
    fn journal_round_trips_and_replay_matches() {
        let dir = std::env::temp_dir().join(format!("cargo-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j1.journal");
        let g = generators::erdos_renyi(18, 0.3, 7);
        let cfg = cfg();

        // Reference run journals two of its three epochs.
        let mut session = Session::new(g.clone(), &cfg);
        let mut journal = EpochJournal::create(&path, &cfg, g.n()).unwrap();
        let mut reference = Vec::new();
        for batch in &script()[..2] {
            let out = session.step(batch).unwrap();
            journal
                .append(EpochRecord {
                    epoch: out.epoch,
                    spent: out.spent,
                    digest: state_digest(
                        session.counter().epochs(),
                        session.counter().graph(),
                    ),
                })
                .unwrap();
            reference.push(out);
        }
        drop(journal);

        // Resume: records parse back, replay is bit-identical, and the
        // resumed session continues exactly where the reference would.
        let journal = EpochJournal::resume(&path, &cfg, g.n()).unwrap();
        assert_eq!(journal.committed(), 2);
        let (mut resumed, outs) = replay_committed(g.clone(), &cfg, &script(), &journal).unwrap();
        assert_eq!(outs, reference);
        let next_ref = session.step(&script()[2]).unwrap();
        let next_resumed = resumed.step(&script()[2]).unwrap();
        assert_eq!(next_ref, next_resumed, "no ε double-spend, same release");

        // A torn trailing line (crash mid-append) is ignored — and
        // truncated from the file, so a post-resume append starts on a
        // fresh line instead of concatenating onto the partial record.
        let clean = std::fs::read_to_string(&path).unwrap();
        let mut content = clean.clone();
        content.push_str("epoch=3 spent=0x40000000");
        std::fs::write(&path, &content).unwrap();
        let mut torn = EpochJournal::resume(&path, &cfg, g.n()).unwrap();
        assert_eq!(torn.committed(), 2, "unterminated record never committed");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            clean,
            "torn bytes truncated on resume"
        );
        torn.append(EpochRecord {
            epoch: next_resumed.epoch,
            spent: next_resumed.spent,
            digest: state_digest(resumed.counter().epochs(), resumed.counter().graph()),
        })
        .unwrap();
        drop(torn);
        let again = EpochJournal::resume(&path, &cfg, g.n()).unwrap();
        assert_eq!(again.committed(), 3, "append after torn resume parses back");
        drop(again);

        // Creating over an existing journal is refused: a forgotten
        // --resume must not wipe the durable ε-spend record.
        assert!(matches!(
            EpochJournal::create(&path, &cfg, g.n()),
            Err(RecoveryError::Exists { .. })
        ));

        // A different config fingerprint is refused.
        let other = cfg.with_seed(99);
        assert!(matches!(
            EpochJournal::resume(&path, &other, g.n()),
            Err(RecoveryError::Header(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_rejects_a_forged_journal() {
        let dir = std::env::temp_dir().join(format!("cargo-journal-forge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j2.journal");
        let g = generators::erdos_renyi(18, 0.3, 7);
        let cfg = cfg();
        let mut journal = EpochJournal::create(&path, &cfg, g.n()).unwrap();
        journal
            .append(EpochRecord {
                epoch: 1,
                spent: 0.5,
                digest: 0xDEAD,
            })
            .unwrap();
        let err = match replay_committed(g, &cfg, &script(), &journal) {
            Ok(_) => panic!("a forged journal must not replay"),
            Err(e) => e,
        };
        assert!(matches!(err, RecoveryError::Mismatch { epoch: 1, .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
