//! # cargo-core — the CARGO protocol
//!
//! Implementation of **"CARGO: Crypto-Assisted Differentially Private
//! Triangle Counting without Trusted Servers"** (ICDE 2024). CARGO
//! computes a noisy triangle count `T'` of a distributed graph under
//! `(ε₁ + ε₂)`-Edge Distributed DP using two semi-honest non-colluding
//! servers — central-model utility without a trusted server.
//!
//! The public API mirrors Algorithm 1:
//!
//! | Paper | Module | What it does |
//! |---|---|---|
//! | Algorithm 1 | [`protocol`] | End-to-end orchestration ([`CargoSystem`]) |
//! | Algorithm 2 `Max` | [`max_degree`] | ε₁-Edge-LDP estimate of `d_max` |
//! | Algorithm 3 `Project` | [`projection`] | Similarity-based local projection |
//! | Algorithm 4 `Count` | [`count`] | ASS-based secure exact count |
//! | Algorithm 5 `Perturb` | [`mod@perturb`] | Distributed Laplace perturbation |
//! | Offline phase \[42, 43\] | [`cargo_mpc::offline`] via [`OfflineMode`] | Dealer or OT-extension MG precomputation |
//! | Deployment shape | [`party`] + [`count_runtime`] | One server per process over a real [`cargo_mpc::transport::Transport`] |
//! | Continuous release | [`delta`] + [`session`] | Edge-delta epochs, incremental Count, per-epoch DP budgeting |
//! | Crash recovery | [`recovery`] | Committed-epoch journal, deterministic replay, resumable serve |
//! | Section III-B ext. | [`node_dp`] | Node-DP variant (sensitivity updates) |
//! | Table II | [`theory`] | Closed-form utility/cost bounds |
//! | Section II-A3 | [`metrics`] | l2 loss and relative error |
//!
//! ## Quick start
//!
//! ```
//! use cargo_core::{CargoConfig, CargoSystem};
//! use cargo_graph::generators::barabasi_albert;
//!
//! // 200 users who each hold one row of the adjacency matrix.
//! let graph = barabasi_albert(200, 4, 7);
//! let config = CargoConfig::new(2.0).with_seed(42);
//! let output = CargoSystem::new(config).run(&graph);
//!
//! // The protocol's differentially private estimate:
//! let t_noisy = output.noisy_count;
//! // Ground truth (available here because this is a simulation):
//! let t_true = output.true_count as f64;
//! assert!((t_noisy - t_true).abs() / t_true < 0.5);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod count;
pub mod count_runtime;
pub mod count_sampled;
pub mod count_sched;
pub mod delta;
pub mod max_degree;
pub mod metrics;
pub mod node_dp;
pub mod party;
pub mod perturb;
pub mod projection;
pub mod recovery;
pub mod sensitivity;
pub mod session;
pub mod protocol;
pub mod theory;

pub use cargo_mpc::{Backpressure, OfflineMode, PoolPolicy, PoolStats};
pub use config::{CargoConfig, CountKernel, ScheduleKind, TransportKind};
pub use count::{
    secure_triangle_count, secure_triangle_count_batched, secure_triangle_count_kernel,
    secure_triangle_count_planned, secure_triangle_count_pooled,
    secure_triangle_count_pooled_planned, secure_triangle_count_streamed,
    secure_triangle_count_tiled, secure_triangle_count_with, SecureCountResult,
    DEFAULT_TILE_THRESHOLD,
};
pub use count_runtime::{
    party_input_shares, run_party_count, run_party_count_planned, run_party_count_pooled,
    threaded_secure_count, threaded_secure_count_offline, threaded_secure_count_planned,
    threaded_secure_count_pooled, threaded_secure_count_sharded, threaded_secure_count_tcp,
    threaded_secure_count_tcp_planned, threaded_secure_count_tcp_pooled,
    threaded_secure_count_tcp_timed,
};
pub use delta::{inline_evaluator, DeltaPlan, EdgeDelta, EpochCount, IncrementalCounter};
pub use party::{run_party, run_party_local, PartyReport};
pub use session::{
    classify_delta_line, parse_delta_script, DeltaLine, EpochOutcome, PartySession, Session,
    SessionError,
};
pub use count_sampled::{
    secure_triangle_count_sampled, secure_triangle_count_sampled_batched,
    secure_triangle_count_sampled_kernel, secure_triangle_count_sampled_planned,
    secure_triangle_count_sampled_with, SampledCountResult,
};
pub use count_sched::{
    CandidateSet, CountScheduler, PairChunk, SchedulePlan, DEFAULT_COUNT_BATCH,
};
pub use max_degree::{estimate_max_degree, MaxDegreeEstimate};
pub use metrics::{l2_loss, peak_rss_bytes, relative_error};
pub use perturb::{aggregate_noise_shares, perturb, PerturbResult};
pub use projection::{project_matrix, project_user_row, ProjectionResult};
pub use recovery::{
    replay_committed, replay_committed_on, state_digest, EpochJournal, EpochRecord, RecoveryError,
};
pub use sensitivity::{local_sensitivity, smooth_sensitivity, smooth_sensitivity_mechanism};
pub use protocol::{CargoOutput, CargoSystem, StepTimings};
