//! Algorithm 3 — `Project`: similarity-based local graph projection.
//!
//! Projection bounds the triangle query's global sensitivity from
//! `O(n)` to `O(d'_max)` by having every user with `dᵢ > d'_max`
//! truncate her adjacent bit vector to `d'_max` neighbours. The paper's
//! insight (Observation 1, triangle homogeneity): the node degrees of a
//! triangle tend to be similar, so deleting edges with *dissimilar*
//! endpoint degrees preserves more triangles than random deletion.
//! The degree similarity is `DS(d₁, d₂) = |d₁ − d₂| / d₁`
//! (Definition 5; lower = more similar), evaluated between the user's
//! own true degree `dᵢ` and her neighbours' *noisy* degrees `d'_j` (the
//! only degree information she can legally see).
//!
//! Projection is a *local* operation: user `i` rewrites only row `i`,
//! so the projected matrix may be asymmetric. That is exactly what
//! Algorithm 4 consumes (the row owner contributes each bit's shares).

use cargo_graph::{BitMatrix, BitVec, Graph};

/// Outcome of projecting a full adjacency matrix.
#[derive(Debug, Clone)]
pub struct ProjectionResult {
    /// The projected (possibly asymmetric) adjacency matrix `Â`.
    pub matrix: BitMatrix,
    /// Number of users whose row was truncated.
    pub truncated_users: usize,
    /// Total number of deleted edge-bits (directed).
    pub deleted_bits: usize,
}

/// Projects one user's adjacent bit vector (Algorithm 3 body for user
/// `i`): keeps the `theta` neighbours whose noisy degrees are most
/// similar to `own_degree`.
///
/// `noisy_degrees` is the full `D'` vector from `Max` — the user reads
/// only her neighbours' entries. Ties in similarity are broken by node
/// id so the output is deterministic (the paper's pseudo-code is
/// ambiguous under ties; this choice keeps exactly `theta` bits, never
/// more, preserving the sensitivity bound).
pub fn project_user_row(
    row: &BitVec,
    own_degree: usize,
    noisy_degrees: &[f64],
    theta: usize,
) -> BitVec {
    debug_assert_eq!(row.len(), noisy_degrees.len());
    if own_degree <= theta {
        return row.clone();
    }
    // Collect (similarity, id) for every neighbour; smaller = keep.
    let di = own_degree as f64;
    let mut scored: Vec<(f64, usize)> = row
        .iter_ones()
        .map(|j| ((di - noisy_degrees[j]).abs() / di, j))
        .collect();
    // Keep the theta most similar. select_nth is O(d).
    if scored.len() > theta {
        scored.select_nth_unstable_by(theta, |a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored.truncate(theta);
    }
    let mut out = BitVec::zeros(row.len());
    for (_, j) in scored {
        out.set(j, true);
    }
    out
}

/// Runs Algorithm 3 over all users: every user with `dᵢ > θ` rewrites
/// her own row; others keep theirs (`Âᵢ = Aᵢ`).
pub fn project_matrix(
    matrix: &BitMatrix,
    true_degrees: &[usize],
    noisy_degrees: &[f64],
    theta: usize,
) -> ProjectionResult {
    assert_eq!(matrix.n(), true_degrees.len());
    assert_eq!(matrix.n(), noisy_degrees.len());
    let mut out = matrix.clone();
    let mut truncated_users = 0;
    let mut deleted_bits = 0;
    #[allow(clippy::needless_range_loop)]
    for i in 0..matrix.n() {
        if true_degrees[i] > theta {
            let new_row = project_user_row(matrix.row(i), true_degrees[i], noisy_degrees, theta);
            deleted_bits += true_degrees[i] - new_row.count_ones();
            truncated_users += 1;
            out.set_row(i, new_row);
        }
    }
    ProjectionResult {
        matrix: out,
        truncated_users,
        deleted_bits,
    }
}

/// Convenience: projects a plaintext [`Graph`] and reports the triangle
/// count surviving projection — the "projection loss" experiments of
/// Figs. 9/10 compare this across projection algorithms.
///
/// The surviving count is computed exactly as the secure protocol would
/// see it: triple products over the asymmetric matrix.
pub fn projection_loss(g: &Graph, noisy_degrees: &[f64], theta: usize) -> (u64, u64) {
    let t_before = cargo_graph::count_triangles(g);
    let res = project_matrix(&g.to_bit_matrix(), &g.degrees(), noisy_degrees, theta);
    let t_after = cargo_graph::count_triangles_matrix(&res.matrix);
    (t_before, t_after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cargo_graph::generators::barabasi_albert;
    use cargo_graph::{count_triangles, count_triangles_matrix};

    /// A wheel-ish graph: hub 0 connected to everyone; rim nodes form
    /// triangles with the hub.
    fn wheel(n: usize) -> Graph {
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push((0, v));
        }
        for v in 1..n - 1 {
            edges.push((v, v + 1));
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn users_within_bound_are_untouched() {
        let g = wheel(10);
        let m = g.to_bit_matrix();
        let degs = g.degrees();
        let noisy: Vec<f64> = degs.iter().map(|&d| d as f64).collect();
        // θ = 9 = hub degree: nobody exceeds it.
        let res = project_matrix(&m, &degs, &noisy, 9);
        assert_eq!(res.truncated_users, 0);
        assert_eq!(res.deleted_bits, 0);
        assert_eq!(res.matrix, m);
    }

    #[test]
    fn truncated_rows_have_exactly_theta_bits() {
        let g = wheel(20);
        let degs = g.degrees();
        let noisy: Vec<f64> = degs.iter().map(|&d| d as f64).collect();
        let theta = 5;
        let res = project_matrix(&g.to_bit_matrix(), &degs, &noisy, theta);
        for (i, &deg) in degs.iter().enumerate() {
            let d = res.matrix.degree(i);
            if deg > theta {
                assert_eq!(d, theta, "user {i}");
            } else {
                assert_eq!(d, deg, "user {i}");
            }
        }
    }

    #[test]
    fn similarity_keeps_degree_similar_neighbours() {
        // User 0 (degree 4) has neighbours with noisy degrees
        // 4, 4, 50, 60 → keeping 2 must keep the two degree-4 ones.
        let g = Graph::from_edges(
            5,
            &[(0, 1), (0, 2), (0, 3), (0, 4)],
        )
        .unwrap();
        let noisy = vec![4.0, 4.0, 4.0, 50.0, 60.0];
        let row = project_user_row(&g.adjacency_row(0), 4, &noisy, 2);
        let kept: Vec<usize> = row.iter_ones().collect();
        assert_eq!(kept, vec![1, 2]);
    }

    #[test]
    fn ties_break_by_node_id_keeping_exactly_theta() {
        // All neighbours equally similar: keep the lowest ids.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        let noisy = vec![5.0; 6];
        let row = project_user_row(&g.adjacency_row(0), 5, &noisy, 3);
        assert_eq!(row.count_ones(), 3);
        let kept: Vec<usize> = row.iter_ones().collect();
        assert_eq!(kept, vec![1, 2, 3]);
    }

    #[test]
    fn sensitivity_bound_holds_after_projection() {
        // After projection every row has ≤ max(θ, original d ≤ θ) bits,
        // so each row's degree ≤ max(θ, θ) = θ whenever all users exceed
        // … more precisely ≤ θ for truncated users, dᵢ ≤ θ otherwise.
        let g = barabasi_albert(300, 6, 3);
        let degs = g.degrees();
        let noisy: Vec<f64> = degs.iter().map(|&d| d as f64 + 0.3).collect();
        let theta = 8;
        let res = project_matrix(&g.to_bit_matrix(), &degs, &noisy, theta);
        for (i, &deg) in degs.iter().enumerate() {
            assert!(res.matrix.degree(i) <= theta.max(deg.min(theta)));
            assert!(res.matrix.degree(i) <= theta);
        }
    }

    #[test]
    fn projection_preserves_triangles_better_than_worst_case() {
        // On a scale-free graph with hubs, similarity projection at a
        // generous θ keeps most triangles.
        let g = barabasi_albert(400, 5, 9);
        let degs = g.degrees();
        let noisy: Vec<f64> = degs.iter().map(|&d| d as f64).collect();
        let theta = g.max_degree() / 2;
        let (before, after) = projection_loss(&g, &noisy, theta);
        assert!(before > 0);
        assert!(
            after as f64 >= 0.4 * before as f64,
            "kept only {after}/{before} triangles"
        );
    }

    #[test]
    fn loss_decreases_as_theta_grows() {
        // Fig. 9/10 trend: larger projection parameter ⇒ less loss.
        let g = barabasi_albert(300, 5, 13);
        let degs = g.degrees();
        let noisy: Vec<f64> = degs.iter().map(|&d| d as f64).collect();
        let (t, small) = projection_loss(&g, &noisy, 6);
        let (_, large) = projection_loss(&g, &noisy, 40);
        assert!(small <= large, "θ=6 kept {small}, θ=40 kept {large}");
        assert!(large <= t);
    }

    #[test]
    fn projected_matrix_counts_via_and_symmetrization_too() {
        // The AND-symmetrized projected graph is a subgraph of the
        // original; its triangles are ≤ the asymmetric triple count.
        let g = barabasi_albert(120, 5, 1);
        let degs = g.degrees();
        let noisy: Vec<f64> = degs.iter().map(|&d| d as f64).collect();
        let res = project_matrix(&g.to_bit_matrix(), &degs, &noisy, 7);
        let asym = count_triangles_matrix(&res.matrix);
        let sym = count_triangles(&Graph::from_bit_matrix(&res.matrix.symmetrize_and()));
        assert!(sym <= asym);
    }
}
