//! The continuous-release epoch loop: `apply deltas → incremental
//! count → per-epoch DP release`.
//!
//! A serve session starts from a base graph, runs a baseline sparse
//! count of it (share state only — nothing is published), and then
//! consumes delta batches. Each committed batch is one **epoch**:
//!
//! 1. ask the [`ReleaseSchedule`] for a grant — a refusal (budget or
//!    horizon exhausted) stops the session *before* any graph
//!    mutation or wire traffic for that epoch;
//! 2. apply the batch through [`IncrementalCounter`], which securely
//!    evaluates only the created/destroyed triangles at their
//!    canonical dealer offsets;
//! 3. add the grant's node noises to the cumulative shares and open
//!    one noisy total count.
//!
//! Noise is attached to the schedule's [`TreeNode`]s, not to epochs:
//! node `ν`'s Laplace shares are derived deterministically from
//! `seed ⊕ NOISE_TWEAK ⊕ mix(ν.id())`, so under binary-tree
//! composition every release that covers `ν` reuses the *same* noise
//! (the tree mechanism's correctness requirement), and the two wire
//! parties derive identical γ-shares with no extra communication.
//!
//! Serve mode runs **without projection**: a per-epoch θ would change
//! the truncated matrix under the incremental counter and break
//! bit-equivalence with from-scratch runs, so the sensitivity is the
//! no-projection bound `Δ = n` and the whole ε is metered by the
//! schedule. A projected/padded continuous mode is a ROADMAP item.
//!
//! Two flavors share all of the above: [`Session`] (in-process, owns
//! both shares — the `--role local` reference) and [`PartySession`]
//! (one role over a real [`Transport`] link). Their per-epoch
//! [`EpochOutcome`]s are bit-identical, which is what lets CI diff a
//! two-process TCP serve transcript against the local one.

use crate::config::CargoConfig;
use crate::count_runtime::run_party_count_planned;
use crate::delta::{inline_evaluator, EdgeDelta, EpochCount, IncrementalCounter};
use crate::protocol::{COUNT_SEED_TWEAK, NOISE_SEED_TWEAK};
use crate::perturb::aggregate_noise_shares;
use crate::recovery::state_digest;
use cargo_dp::{Composition, FixedPointCodec, ReleaseGrant, ReleaseRefused, ReleaseSchedule, TreeNode};
use cargo_graph::{Graph, GraphError};
use cargo_mpc::{
    recv_msg, send_msg, CommitMsg, FinalOpeningMsg, NetStats, Ring64, ServerId, Transport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::io::BufRead;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Everything one epoch publishes. Role-independent: both wire
/// parties and the in-process reference produce identical outcomes
/// (the transcript CI diffs them byte for byte).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// 1-based epoch number (== the schedule's release counter).
    pub epoch: u64,
    /// The released noisy triangle count of the *current* graph.
    pub noisy_count: f64,
    /// Non-redundant deltas applied this epoch.
    pub applied: usize,
    /// Redundant deltas skipped this epoch.
    pub redundant: usize,
    /// Triangles born this epoch.
    pub created: u64,
    /// Triangles destroyed this epoch.
    pub destroyed: u64,
    /// Triples securely evaluated this epoch.
    pub triples: u64,
    /// Fresh ε charged to the accountant by this release (0 for
    /// tree-composition epochs whose levels were already paid for).
    pub charged: f64,
    /// Per-node ε of the grant's noise nodes.
    pub node_epsilon: f64,
    /// Cumulative ε spent after this release.
    pub spent: f64,
    /// This epoch's server↔server traffic (sub-counts + the final
    /// opening). `wire_bytes` is measured on wire sessions and always
    /// equals the modeled `bytes`.
    pub net: NetStats,
}

/// Why a serve session stopped (or refused to start an epoch).
#[derive(Debug)]
pub enum SessionError {
    /// The release schedule refused the epoch — ε or horizon
    /// exhausted. The graph and shares are untouched; this is the
    /// clean end of a session's release lifetime.
    Refused(ReleaseRefused),
    /// A delta referenced an invalid edge (out of range / self-loop).
    Graph(GraphError),
    /// The peer died or the link failed mid-epoch. No release was
    /// opened for the epoch; the session is poisoned.
    Peer(String),
    /// A malformed line in a delta script.
    Script {
        /// 1-based line number.
        line: usize,
        /// What failed to parse.
        message: String,
    },
    /// The epoch-commit handshake found the two parties in different
    /// states — different committed epoch or different state digest.
    /// Proceeding would fork the release transcript, so the session
    /// stops before opening anything.
    Desync {
        /// Which handshake field disagreed.
        what: &'static str,
        /// Our side's value.
        ours: u64,
        /// The peer's value.
        theirs: u64,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Refused(r) => write!(f, "{r}"),
            SessionError::Graph(e) => write!(f, "bad delta: {e}"),
            SessionError::Peer(msg) => write!(f, "peer failure mid-epoch: {msg}"),
            SessionError::Script { line, message } => {
                write!(f, "delta script line {line}: {message}")
            }
            SessionError::Desync { what, ours, theirs } => {
                write!(
                    f,
                    "parties desynced on {what}: ours {ours:#x}, theirs {theirs:#x}"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ReleaseRefused> for SessionError {
    fn from(r: ReleaseRefused) -> Self {
        SessionError::Refused(r)
    }
}

impl From<GraphError> for SessionError {
    fn from(e: GraphError) -> Self {
        SessionError::Graph(e)
    }
}

/// Mixes a [`TreeNode`] id into a seed tweak (the id's raw form is
/// small and structured; the multiply spreads it over the word).
fn node_tweak(node: TreeNode) -> u64 {
    node.id().wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Schedule + per-node noise cache, shared by both session flavors.
struct ReleaseState {
    schedule: ReleaseSchedule,
    codec: FixedPointCodec,
    sensitivity: f64,
    n: usize,
    seed: u64,
    /// Node id → `(γ₁, γ₂)`. Deterministic, so the cache is purely an
    /// optimisation — but it documents the tree mechanism's intent:
    /// one noise draw per node, reused by every release covering it.
    node_noise: HashMap<u64, (Ring64, Ring64)>,
}

impl ReleaseState {
    fn new(cfg: &CargoConfig, n: usize) -> Self {
        let schedule = match cfg.composition {
            Composition::Fixed => ReleaseSchedule::fixed(cfg.epsilon, cfg.horizon),
            Composition::BinaryTree => ReleaseSchedule::binary_tree(cfg.epsilon, cfg.horizon),
        };
        ReleaseState {
            schedule,
            codec: FixedPointCodec::new(cfg.frac_bits),
            sensitivity: n as f64,
            n,
            seed: cfg.seed,
            node_noise: HashMap::new(),
        }
    }

    /// Sum of the grant's node noise shares, `(Σγ₁, Σγ₂)`.
    fn gammas(&mut self, grant: &ReleaseGrant) -> (Ring64, Ring64) {
        let mut g1 = Ring64::ZERO;
        let mut g2 = Ring64::ZERO;
        for &node in &grant.nodes {
            let (n_users, sensitivity, codec, seed, eps) =
                (self.n, self.sensitivity, self.codec, self.seed, grant.node_epsilon);
            let (a, b) = *self.node_noise.entry(node.id()).or_insert_with(|| {
                let tweak = node_tweak(node);
                aggregate_noise_shares(
                    n_users,
                    sensitivity,
                    eps,
                    codec,
                    &mut StdRng::seed_from_u64(seed ^ NOISE_SEED_TWEAK ^ tweak),
                    seed ^ NOISE_SEED_TWEAK ^ tweak.rotate_left(32),
                )
            });
            g1 += a;
            g2 += b;
        }
        (g1, g2)
    }
}

fn outcome(
    grant: &ReleaseGrant,
    ec: &EpochCount,
    noisy_count: f64,
    spent: f64,
    net: NetStats,
) -> EpochOutcome {
    EpochOutcome {
        epoch: grant.epoch,
        noisy_count,
        applied: ec.applied,
        redundant: ec.redundant,
        created: ec.created,
        destroyed: ec.destroyed,
        triples: ec.triples,
        charged: grant.charged,
        node_epsilon: grant.node_epsilon,
        spent,
        net,
    }
}

/// The in-process continuous-release session: owns both share slots
/// and opens releases locally. This is the `--role local` reference
/// the wire transcripts are diffed against, and the cheap harness for
/// the equivalence suites.
pub struct Session {
    cfg: CargoConfig,
    counter: IncrementalCounter,
    release: ReleaseState,
}

impl Session {
    /// Counts the base graph (baseline share state; nothing released)
    /// and arms the release schedule.
    pub fn new(graph: Graph, cfg: &CargoConfig) -> Self {
        let mut eval = inline_evaluator(
            cfg.seed ^ COUNT_SEED_TWEAK,
            cfg.effective_threads(),
            cfg.effective_batch(),
            cfg.offline,
            cfg.kernel,
        );
        let counter = IncrementalCounter::new_with(graph, &mut eval);
        let n = counter.graph().n();
        Session {
            cfg: *cfg,
            counter,
            release: ReleaseState::new(cfg, n),
        }
    }

    /// The incremental engine (graph, shares, cumulative stats).
    pub fn counter(&self) -> &IncrementalCounter {
        &self.counter
    }

    /// The release schedule's accountant view.
    pub fn schedule(&self) -> &ReleaseSchedule {
        &self.release.schedule
    }

    /// Runs one epoch. On refusal, nothing changed — not the graph,
    /// not the shares, not the ledger.
    pub fn step(&mut self, batch: &[EdgeDelta]) -> Result<EpochOutcome, SessionError> {
        let grant = self.release.schedule.next_release()?;
        let mut eval = inline_evaluator(
            self.cfg.seed ^ COUNT_SEED_TWEAK,
            self.cfg.effective_threads(),
            self.cfg.effective_batch(),
            self.cfg.offline,
            self.cfg.kernel,
        );
        let ec = self.counter.apply_with(batch, &mut eval)?;
        let (g1, g2) = self.release.gammas(&grant);
        let codec = self.release.codec;
        let f1 = codec.lift_integer(ec.share1) + g1;
        let f2 = codec.lift_integer(ec.share2) + g2;
        let noisy = codec.decode(f1 + f2);
        let mut net = ec.net;
        net.exchange(1); // the final opening
        let spent = self.release.schedule.accountant().spent();
        Ok(outcome(&grant, &ec, noisy, spent, net))
    }
}

/// One wire party's continuous-release session. Bit-identical
/// [`EpochOutcome`]s to [`Session`] under the same config; only the
/// role-local share slot is live internally.
///
/// A peer failure mid-epoch surfaces as [`SessionError::Peer`] (the
/// worker `RecvError` path — disconnect immediately, timeout after
/// the link's [`Transport::recv_timeout`]), emits **no** release for
/// the incomplete epoch, and poisons the session. Before the final
/// opening, the parties run an idempotent epoch-commit handshake
/// (exchange of [`CommitMsg`]) so a divergent pair stops with
/// [`SessionError::Desync`] instead of publishing forked releases.
pub struct PartySession<T: Transport> {
    cfg: CargoConfig,
    role: ServerId,
    link: Arc<T>,
    counter: IncrementalCounter,
    release: ReleaseState,
    /// Link payload watermark at the last epoch boundary — measured
    /// per-epoch `wire_bytes` is the delta across it.
    wire_mark: u64,
    poisoned: bool,
}

impl<T: Transport> PartySession<T> {
    /// Runs the baseline count of `graph` over `link` and arms the
    /// schedule. Fails with [`SessionError::Peer`] if the peer dies
    /// during the baseline.
    pub fn new(
        graph: Graph,
        cfg: &CargoConfig,
        role: ServerId,
        link: Arc<T>,
    ) -> Result<Self, SessionError> {
        let counter = {
            let link = &link;
            catch_unwind(AssertUnwindSafe(|| {
                IncrementalCounter::new_with(graph, party_evaluator(cfg, role, link))
            }))
            .map_err(|p| SessionError::Peer(panic_message(&*p)))?
        };
        let n = counter.graph().n();
        let wire_mark = link.stats().online_payload_both();
        Ok(PartySession {
            cfg: *cfg,
            role,
            link,
            counter,
            release: ReleaseState::new(cfg, n),
            wire_mark,
            poisoned: false,
        })
    }

    /// The incremental engine (graph, shares, cumulative stats).
    pub fn counter(&self) -> &IncrementalCounter {
        &self.counter
    }

    /// The release schedule's accountant view.
    pub fn schedule(&self) -> &ReleaseSchedule {
        &self.release.schedule
    }

    /// Runs one epoch against the peer. Refusals are clean (no wire
    /// traffic, nothing mutated); peer failures poison the session.
    pub fn step(&mut self, batch: &[EdgeDelta]) -> Result<EpochOutcome, SessionError> {
        if self.poisoned {
            return Err(SessionError::Peer(
                "session poisoned by an earlier peer failure".into(),
            ));
        }
        let grant = self.release.schedule.next_release()?;
        let (cfg, role) = (self.cfg, self.role);
        let counter = &mut self.counter;
        let release = &mut self.release;
        let link = &self.link;
        let stepped = catch_unwind(AssertUnwindSafe(
            || -> Result<(EpochCount, f64), SessionError> {
                let ec = counter.apply_with(batch, party_evaluator(&cfg, role, link))?;
                // Idempotent epoch-commit handshake: agree on the
                // epoch id and post-apply state digest *before* any
                // noise share crosses the wire. A desynced pair (one
                // party replayed a different script, resumed from a
                // stale journal, …) stops typed here instead of
                // publishing forked releases. CommitMsg payload rides
                // outside both cost classes, so the measured online
                // payload still equals the modeled ledger.
                let digest = state_digest(counter.epochs(), counter.graph());
                send_msg(&**link, &CommitMsg { epoch: grant.epoch, digest })
                    .map_err(|e| SessionError::Peer(format!("epoch commit send: {e}")))?;
                let peer: CommitMsg = recv_msg(&**link, 0, Some(link.recv_timeout()))
                    .map_err(|e| SessionError::Peer(format!("epoch commit recv: {e}")))?;
                if peer.epoch != grant.epoch {
                    return Err(SessionError::Desync {
                        what: "committed epoch",
                        ours: grant.epoch,
                        theirs: peer.epoch,
                    });
                }
                if peer.digest != digest {
                    return Err(SessionError::Desync {
                        what: "state digest",
                        ours: digest,
                        theirs: peer.digest,
                    });
                }
                let (g1, g2) = release.gammas(&grant);
                let my_gamma = match role {
                    ServerId::S1 => g1,
                    ServerId::S2 => g2,
                };
                let my_share = match role {
                    ServerId::S1 => ec.share1,
                    ServerId::S2 => ec.share2,
                };
                let my_final = release.codec.lift_integer(my_share) + my_gamma;
                send_msg(&**link, &FinalOpeningMsg { share: my_final })
                    .map_err(|e| SessionError::Peer(format!("final opening send: {e}")))?;
                let theirs: FinalOpeningMsg = recv_msg(&**link, 0, Some(link.recv_timeout()))
                    .map_err(|e| SessionError::Peer(format!("final opening recv: {e}")))?;
                Ok((ec, release.codec.decode(my_final + theirs.share)))
            },
        ));
        let (ec, noisy) = match stepped {
            Ok(Ok(pair)) => pair,
            Ok(Err(e)) => {
                self.poisoned = true;
                return Err(e);
            }
            Err(p) => {
                self.poisoned = true;
                return Err(SessionError::Peer(panic_message(&*p)));
            }
        };
        let mut net = ec.net;
        net.exchange(1); // the final opening
        // Measured wire bytes for the epoch: counts + final opening.
        // The modeled paths keep `wire_bytes == bytes`; the wire
        // session *measures* and must land on the same number.
        let now = self.link.stats().online_payload_both();
        net.wire_bytes = now - self.wire_mark;
        self.wire_mark = now;
        let spent = self.release.schedule.accountant().spent();
        Ok(outcome(&grant, &ec, noisy, spent, net))
    }

    /// Reconnects a crashed party to its peer and synchronises the
    /// two committed frontiers.
    ///
    /// `replayed` is the locally recomputed pre-crash session (from
    /// [`crate::recovery::replay_committed`]); `pending` are the delta
    /// batches *after* its committed frontier, in epoch order. The
    /// handshake is symmetric and message-balanced:
    ///
    /// * each party announces `(next epoch, state digest)` once;
    /// * the party that is *behind* replays the missing epochs from
    ///   `pending` **locally** (canonical dealer offsets make the
    ///   recomputation bit-identical to the lost live epochs — zero
    ///   counting traffic) and re-announces after each;
    /// * the party that is *ahead* keeps receiving announcements until
    ///   the frontiers meet;
    /// * at the meeting point the digests must agree, else the pair
    ///   stops with [`SessionError::Desync`].
    ///
    /// Since the replayed schedule only re-granted *committed* epochs,
    /// the grant consumed by a crashed in-flight epoch is never
    /// double-spent: total ε after resume equals an uninterrupted run.
    ///
    /// Returns the live session plus the outcomes of the epochs caught
    /// up during the handshake (bit-identical to what an uninterrupted
    /// run would have published), each paired with its post-epoch
    /// [`state_digest`] so the caller can journal them before
    /// publishing; the caller continues stepping from
    /// `pending[caught_up.len()..]`.
    pub fn resume(
        replayed: Session,
        role: ServerId,
        link: Arc<T>,
        pending: &[Vec<EdgeDelta>],
    ) -> Result<(Self, Vec<(EpochOutcome, u64)>), SessionError> {
        let mut session = replayed;
        let digest_of =
            |s: &Session| state_digest(s.counter.epochs(), s.counter.graph());
        let mut my_next = s_released(&session) + 1;
        let mut catchup = Vec::new();
        send_msg(
            &*link,
            &CommitMsg { epoch: my_next, digest: digest_of(&session) },
        )
        .map_err(|e| SessionError::Peer(format!("resume handshake send: {e}")))?;
        let mut theirs: CommitMsg = recv_msg(&*link, 0, Some(link.recv_timeout()))
            .map_err(|e| SessionError::Peer(format!("resume handshake recv: {e}")))?;
        loop {
            if theirs.epoch > my_next {
                // The peer committed epochs we crashed out of: replay
                // them locally and announce each catch-up step.
                let batch = pending.get(catchup.len()).ok_or_else(|| {
                    SessionError::Peer(format!(
                        "peer committed epoch {} past our delta script",
                        theirs.epoch.saturating_sub(1)
                    ))
                })?;
                let out = session.step(batch)?;
                let digest = digest_of(&session);
                catchup.push((out, digest));
                my_next += 1;
                send_msg(
                    &*link,
                    &CommitMsg { epoch: my_next, digest: digest_of(&session) },
                )
                .map_err(|e| SessionError::Peer(format!("resume handshake send: {e}")))?;
            } else if theirs.epoch < my_next {
                // The peer is catching up; wait for its announcements.
                theirs = recv_msg(&*link, 0, Some(link.recv_timeout()))
                    .map_err(|e| SessionError::Peer(format!("resume handshake recv: {e}")))?;
            } else {
                let ours = digest_of(&session);
                if theirs.digest != ours {
                    return Err(SessionError::Desync {
                        what: "resume state digest",
                        ours,
                        theirs: theirs.digest,
                    });
                }
                break;
            }
        }
        let Session { cfg, counter, release } = session;
        let wire_mark = link.stats().online_payload_both();
        Ok((
            PartySession {
                cfg,
                role,
                link,
                counter,
                release,
                wire_mark,
                poisoned: false,
            },
            catchup,
        ))
    }
}

/// The session's committed-release frontier (how many epochs its
/// schedule has granted).
fn s_released(s: &Session) -> u64 {
    s.release.schedule.released()
}

/// The wire evaluator: planned party counts whose `wire_bytes` are
/// restored to the modeled invariant (`run_party_count_planned`
/// reports the link's cumulative payload; per-epoch measurement
/// happens at the session layer instead).
fn party_evaluator<'a, T: Transport>(
    cfg: &CargoConfig,
    role: ServerId,
    link: &'a Arc<T>,
) -> impl FnMut(&cargo_graph::BitMatrix, crate::count_sched::SchedulePlan) -> crate::count::SecureCountResult + 'a
{
    let (seed, threads, batch, mode, policy) = (
        cfg.seed ^ COUNT_SEED_TWEAK,
        cfg.effective_threads(),
        cfg.effective_batch(),
        cfg.offline,
        cfg.pool_policy(),
    );
    move |matrix, plan| {
        let mut r =
            run_party_count_planned(matrix, seed, threads, batch, mode, role, link, policy, plan);
        r.net.wire_bytes = r.net.bytes;
        r
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque worker panic".into())
}

/// Parses a whole delta script into per-epoch batches.
///
/// Line syntax: `+u v` / `-u v` deltas, `commit` ends an epoch (an
/// empty epoch is legal — it re-releases the current count under
/// fresh schedule noise), `#`-prefixed and blank lines are ignored.
/// Trailing deltas without a final `commit` form a last epoch.
pub fn parse_delta_script<R: BufRead>(reader: R) -> Result<Vec<Vec<EdgeDelta>>, SessionError> {
    let mut epochs = Vec::new();
    let mut batch = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| SessionError::Script {
            line: idx + 1,
            message: format!("io error: {e}"),
        })?;
        match classify_delta_line(&line).map_err(|message| SessionError::Script {
            line: idx + 1,
            message,
        })? {
            DeltaLine::Blank => {}
            DeltaLine::Commit => epochs.push(std::mem::take(&mut batch)),
            DeltaLine::Delta(d) => batch.push(d),
        }
    }
    if !batch.is_empty() {
        epochs.push(batch);
    }
    Ok(epochs)
}

/// One classified line of a delta script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaLine {
    /// Comment or whitespace.
    Blank,
    /// End of the current epoch's batch.
    Commit,
    /// An edge mutation.
    Delta(EdgeDelta),
}

/// Classifies one line of the serve wire syntax (shared by the script
/// parser and the binaries' streaming stdin loop).
pub fn classify_delta_line(line: &str) -> Result<DeltaLine, String> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') {
        Ok(DeltaLine::Blank)
    } else if t == "commit" {
        Ok(DeltaLine::Commit)
    } else {
        t.parse::<EdgeDelta>().map(DeltaLine::Delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cargo_graph::{count_triangles, generators};
    use cargo_mpc::memory_pair;

    fn serve_cfg() -> CargoConfig {
        CargoConfig::new(2.0).with_seed(42).with_horizon(4)
    }

    #[test]
    fn script_parsing_batches_by_commit() {
        let script = "# warmup\n+0 1\n-2 3\ncommit\n\ncommit\n+4 5\n";
        let epochs = parse_delta_script(script.as_bytes()).unwrap();
        assert_eq!(
            epochs,
            vec![
                vec![EdgeDelta::Add(0, 1), EdgeDelta::Remove(2, 3)],
                vec![],
                vec![EdgeDelta::Add(4, 5)],
            ]
        );
        assert!(matches!(
            parse_delta_script("+1 bad\n".as_bytes()),
            Err(SessionError::Script { line: 1, .. })
        ));
    }

    #[test]
    fn local_session_releases_and_then_refuses() {
        let g = generators::erdos_renyi(24, 0.25, 5);
        let mut s = Session::new(g, &serve_cfg());
        let mut last_spent = 0.0;
        for t in 1..=4u64 {
            let out = s
                .step(&[EdgeDelta::Add(0, t as u32), EdgeDelta::Remove(1, (t + 4) as u32)])
                .unwrap();
            assert_eq!(out.epoch, t);
            assert!(out.spent > last_spent);
            last_spent = out.spent;
            // The release is the noisy count of the *live* graph.
            let true_count = count_triangles(s.counter().graph()) as f64;
            assert!((out.noisy_count - true_count).abs() < 1e6);
            assert_eq!(out.net.wire_bytes, out.net.bytes);
        }
        // Budget exhausted: the 5th epoch is refused cleanly.
        let graph_before = s.counter().graph().clone();
        let err = s.step(&[EdgeDelta::Add(9, 10)]).unwrap_err();
        assert!(matches!(err, SessionError::Refused(_)), "{err}");
        assert_eq!(s.counter().graph(), &graph_before, "refusal mutates nothing");
        assert_eq!(s.counter().epochs(), 4);
    }

    #[test]
    fn party_sessions_match_the_local_reference_bit_for_bit() {
        let g = generators::erdos_renyi(20, 0.3, 9);
        let cfg = serve_cfg().with_composition(Composition::BinaryTree);
        let epochs: Vec<Vec<EdgeDelta>> = vec![
            vec![EdgeDelta::Add(0, 1), EdgeDelta::Add(1, 2), EdgeDelta::Add(0, 2)],
            vec![EdgeDelta::Remove(0, 1)],
            vec![],
        ];
        let mut local = Session::new(g.clone(), &cfg);
        let local_outs: Vec<_> = epochs.iter().map(|b| local.step(b).unwrap()).collect();

        let (e1, e2) = memory_pair();
        let (e1, e2) = (Arc::new(e1), Arc::new(e2));
        let (outs1, outs2) = std::thread::scope(|scope| {
            let run = |role, link: Arc<cargo_mpc::InMemoryTransport>| {
                let g = g.clone();
                let epochs = &epochs;
                scope.spawn(move || {
                    let mut s = PartySession::new(g, &cfg, role, link).unwrap();
                    epochs.iter().map(|b| s.step(b).unwrap()).collect::<Vec<_>>()
                })
            };
            let h1 = run(ServerId::S1, Arc::clone(&e1));
            let h2 = run(ServerId::S2, Arc::clone(&e2));
            (h1.join().unwrap(), h2.join().unwrap())
        });
        assert_eq!(outs1, outs2, "the two parties' transcripts agree");
        assert_eq!(outs1, local_outs, "wire == local reference, bit for bit");
    }
}
