//! Utility metrics (Section II-A3).
//!
//! `l2(T, T') = (T − T')²` and `re(T, T') = |T − T'| / T`; the
//! experiments report both, averaged over repeated trials.

/// Squared error between the true and estimated triangle counts.
pub fn l2_loss(t_true: f64, t_est: f64) -> f64 {
    let d = t_true - t_est;
    d * d
}

/// Relative error `|T − T'| / T`.
///
/// # Panics
/// Panics if `t_true == 0` (the paper defines the metric only for
/// `T ≠ 0`).
pub fn relative_error(t_true: f64, t_est: f64) -> f64 {
    assert!(t_true != 0.0, "relative error undefined for T = 0");
    (t_true - t_est).abs() / t_true.abs()
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Median of a slice (0 for empty input).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Peak resident set size (high-water mark) of this process in bytes,
/// read from Linux's `VmHWM` line in `/proc/self/status`. Returns
/// `None` on platforms without that interface (or if the kernel ever
/// drops the line) — callers report the number as *unavailable*, never
/// as zero. This is the probe the large-graph benches use to certify
/// that the streamed sparse schedule's peak memory stays O(chunk):
/// VmHWM is a true high-water mark, so it catches any transient
/// materialisation the instantaneous RSS would miss.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_is_squared_difference() {
        assert_eq!(l2_loss(10.0, 7.0), 9.0);
        assert_eq!(l2_loss(7.0, 10.0), 9.0);
        assert_eq!(l2_loss(5.0, 5.0), 0.0);
    }

    #[test]
    fn relative_error_basic() {
        assert!((relative_error(100.0, 90.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(100.0, 110.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn relative_error_zero_truth_panics() {
        relative_error(0.0, 1.0);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_present_and_plausible_on_linux() {
        // Touch a buffer so the high-water mark is at least a few MB.
        let buf = vec![1u8; 4 << 20];
        assert!(buf.iter().map(|&b| b as u64).sum::<u64>() > 0);
        let peak = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(peak >= 4 << 20, "peak {peak} below the buffer just touched");
    }

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }
}
