//! Utility metrics (Section II-A3).
//!
//! `l2(T, T') = (T − T')²` and `re(T, T') = |T − T'| / T`; the
//! experiments report both, averaged over repeated trials.

/// Squared error between the true and estimated triangle counts.
pub fn l2_loss(t_true: f64, t_est: f64) -> f64 {
    let d = t_true - t_est;
    d * d
}

/// Relative error `|T − T'| / T`.
///
/// # Panics
/// Panics if `t_true == 0` (the paper defines the metric only for
/// `T ≠ 0`).
pub fn relative_error(t_true: f64, t_est: f64) -> f64 {
    assert!(t_true != 0.0, "relative error undefined for T = 0");
    (t_true - t_est).abs() / t_true.abs()
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Median of a slice (0 for empty input).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_is_squared_difference() {
        assert_eq!(l2_loss(10.0, 7.0), 9.0);
        assert_eq!(l2_loss(7.0, 10.0), 9.0);
        assert_eq!(l2_loss(5.0, 5.0), 0.0);
    }

    #[test]
    fn relative_error_basic() {
        assert!((relative_error(100.0, 90.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(100.0, 110.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn relative_error_zero_truth_panics() {
        relative_error(0.0, 1.0);
    }

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }
}
