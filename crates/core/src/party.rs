//! One deployable party of the CARGO pipeline.
//!
//! [`CargoSystem`](crate::CargoSystem) simulates both servers in one
//! process; this module is the *deployment* shape: [`run_party`] plays
//! exactly one of S₁/S₂ — max-degree estimation, projection, the
//! sharded secure count, and the distributed perturbation — against a
//! live peer on the other end of a [`Transport`]. The `party` binary
//! wraps it so the full pipeline runs as **two real OS processes over
//! loopback (or cross-machine) TCP**.
//!
//! ## What is local, what crosses the wire
//!
//! * **Input shares** — each party expands only *its own* share matrix
//!   ([`party_input_shares`]): what its users uploaded to it. The
//!   party holds the plaintext graph solely to play its users; the
//!   count itself touches only the shares.
//! * **Max + Project** — the noisy max degree and the projection are
//!   deterministic in the public seed (the DP noise of Algorithm 2 is
//!   drawn from the seeded public coin), so both parties compute them
//!   identically with no communication, as both servers of the paper
//!   hold `d'_max` and the users project their own rows.
//! * **Count** — every `e, f, g` opening crosses the wire as an
//!   encoded [`cargo_mpc::OpeningMsg`] frame; in OT mode the whole
//!   preprocessing dialogue does too.
//! * **Perturb** — the users' noise-share uploads are replayed
//!   deterministically ([`aggregate_noise_shares`]); the final noisy
//!   shares are opened over the wire ([`cargo_mpc::FinalOpeningMsg`]),
//!   which is the pipeline's last modeled exchange.
//!
//! Both parties therefore compute **the same noisy count, the same
//! full modeled [`NetStats`], and the same measured `wire_bytes`** —
//! each party tallies the bidirectional model itself and measures
//! `sent + received` on its own endpoint. The CI `tcp-smoke` job
//! diffs the two processes' transcripts against an in-memory
//! reference run ([`run_party_local`]) line by line.

use crate::config::{CargoConfig, ScheduleKind};
use crate::count_runtime::run_party_count_planned;
use crate::count_sched::{CandidateSet, SchedulePlan};
use crate::perturb::aggregate_noise_shares;
use crate::protocol::{count_sensitivity, max_and_project, COUNT_SEED_TWEAK, NOISE_SEED_TWEAK};
use cargo_dp::FixedPointCodec;
use cargo_graph::{count_triangles_matrix, CsrGraph, Graph};
use cargo_mpc::{
    memory_pair, recv_msg, send_msg, FinalOpeningMsg, NetStats, Ring64, ServerId, Transport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

pub use crate::count_runtime::party_input_shares;

/// Everything one party's pipeline run produces. Both parties of a run
/// produce identical reports except for [`PartyReport::count_share`]
/// (each holds only its own share — the one secret field).
#[derive(Debug, Clone, PartialEq)]
pub struct PartyReport {
    /// Which server this party played.
    pub role: ServerId,
    /// The `(ε₁+ε₂)`-Edge-DDP triangle estimate `T'` — identical on
    /// both parties (each opens the same pair of final shares).
    pub noisy_count: f64,
    /// This party's share `⟨T⟩ᵢ` of the exact count (never leaves the
    /// process un-noised).
    pub count_share: Ring64,
    /// The noisy maximum degree used as projection parameter.
    pub d_max_noisy: f64,
    /// Users whose rows were truncated by projection.
    pub truncated_users: usize,
    /// Diagnostic (simulation only): the exact count after projection.
    pub projected_count: u64,
    /// The full bidirectional modeled ledger — count rounds plus the
    /// final opening — with `wire_bytes` overwritten by the bytes this
    /// party's endpoint actually measured (sent + received), which
    /// must equal the modeled `online().bytes` exactly.
    pub net: NetStats,
    /// Triples the count evaluated.
    pub triples: u64,
    /// Offline triple-factory counters (zero when preprocessing ran
    /// inline); both parties' pools fill and drain identically.
    pub pool: cargo_mpc::PoolStats,
}

/// Runs the full pipeline as server `role` against a live peer over
/// `link`. Panics (loudly) if the peer disconnects or wedges past the
/// link's [`Transport::recv_timeout`].
pub fn run_party<T: Transport>(
    graph: &Graph,
    cfg: &CargoConfig,
    role: ServerId,
    link: &Arc<T>,
) -> PartyReport {
    let split = cfg.epsilon_split();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = graph.n();
    assert!(n > 0, "graph must have at least one user");

    // ---- Step 1: similarity-based projection (local, seeded — the
    // exact step CargoSystem::run executes, shared code) ----
    let input = max_and_project(graph, cfg, &mut rng);
    let (projected, max_est, truncated_users) =
        (input.matrix, input.max_est, input.truncated_users);

    // ---- Step 2: ASS-based triangle counting (over the wire; with
    // --factory-threads in OT mode, preprocessing runs on this
    // party's local background triple pool instead). Both parties
    // derive the projected matrix from the same public seed, so each
    // builds the identical sparse candidate plan locally — the plan is
    // a pure function of shared public state, never a message. ----
    let plan = match cfg.schedule {
        ScheduleKind::Dense => SchedulePlan::DenseCube,
        ScheduleKind::Sparse => {
            SchedulePlan::CandidatePairs(Arc::new(CandidateSet::from_support(&projected)))
        }
        // Same chunks and shares as Sparse, streamed lazily from CSR
        // prefix sums; the wire runtime consumes chunk plans through
        // the same interface, so nothing else changes.
        ScheduleKind::SparseStream => {
            SchedulePlan::CsrStream(Arc::new(CsrGraph::from_support(&projected)))
        }
    };
    let count = run_party_count_planned(
        &projected,
        cfg.seed ^ COUNT_SEED_TWEAK,
        cfg.effective_threads(),
        cfg.effective_batch(),
        cfg.offline,
        role,
        link,
        cfg.pool_policy(),
        plan,
    );
    let count_share = match role {
        ServerId::S1 => count.share1,
        ServerId::S2 => count.share2,
    };
    let mut net = count.net;

    // ---- Step 3: distributed perturbation (opening over the wire) ----
    let sensitivity = count_sensitivity(cfg, &max_est, n);
    let codec = FixedPointCodec::new(cfg.frac_bits);
    let (gamma1, gamma2) = aggregate_noise_shares(
        n,
        sensitivity,
        split.epsilon2,
        codec,
        &mut rng,
        cfg.seed ^ NOISE_SEED_TWEAK,
    );
    let my_gamma = match role {
        ServerId::S1 => gamma1,
        ServerId::S2 => gamma2,
    };
    let my_final = codec.lift_integer(count_share) + my_gamma;
    send_msg(&**link, &FinalOpeningMsg { share: my_final })
        .expect("peer hung up before the final opening");
    let theirs: FinalOpeningMsg = recv_msg(&**link, 0, Some(link.recv_timeout()))
        .unwrap_or_else(|e| panic!("peer lost at the final opening: {e}"));
    net.exchange(1);
    let noisy_count = codec.decode(my_final + theirs.share);

    // Measured == modeled, now including the final opening.
    net.wire_bytes = link.stats().online_payload_both();

    PartyReport {
        role,
        noisy_count,
        count_share,
        d_max_noisy: max_est.d_max_noisy,
        truncated_users,
        projected_count: count_triangles_matrix(&projected),
        net,
        triples: count.triples,
        pool: count.pool,
    }
}

/// The in-process reference run: both parties over the two ends of an
/// in-memory byte link, via the *same* [`run_party`] code path the TCP
/// processes execute. Returns `(S₁'s report, S₂'s report)` after
/// asserting the two parties opened the same noisy count.
///
/// `party --role local` prints this run in the same transcript format
/// as `--role s1`/`--role s2`, so the CI smoke can diff a two-process
/// loopback run against it byte for byte.
pub fn run_party_local(graph: &Graph, cfg: &CargoConfig) -> (PartyReport, PartyReport) {
    let (end1, end2) = memory_pair();
    let (end1, end2) = (Arc::new(end1), Arc::new(end2));
    let (r1, r2) = std::thread::scope(|scope| {
        let h1 = {
            let end1 = &end1;
            scope.spawn(move || run_party(graph, cfg, ServerId::S1, end1))
        };
        let h2 = {
            let end2 = &end2;
            scope.spawn(move || run_party(graph, cfg, ServerId::S2, end2))
        };
        (
            h1.join().expect("party S1 panicked"),
            h2.join().expect("party S2 panicked"),
        )
    });
    assert_eq!(
        r1.noisy_count, r2.noisy_count,
        "the two parties opened different noisy counts"
    );
    (r1, r2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CargoSystem;
    use cargo_graph::generators::{barabasi_albert, erdos_renyi};

    #[test]
    fn party_pipeline_reproduces_the_monolithic_system_bit_for_bit() {
        // The acceptance criterion at pipeline level: two parties over
        // a real byte link open the exact noisy count the in-process
        // CargoSystem computes from the same seed/config, with the
        // same online ledger, and the measured wire equals the model.
        let g = barabasi_albert(80, 4, 3);
        for (threads, batch) in [(1usize, 0usize), (2, 16)] {
            let cfg = CargoConfig::new(2.0)
                .with_seed(11)
                .with_threads(threads)
                .with_batch(batch);
            let mono = CargoSystem::new(cfg).run(&g);
            let (r1, r2) = run_party_local(&g, &cfg);
            assert_eq!(r1.noisy_count, mono.noisy_count, "t={threads} b={batch}");
            assert_eq!(r1.d_max_noisy, mono.d_max_noisy);
            assert_eq!(r1.truncated_users, mono.truncated_users);
            assert_eq!(r1.projected_count, mono.projected_count);
            assert_eq!(r1.net, mono.net, "party ledger == monolithic ledger");
            assert_eq!(r2.net, mono.net, "both parties report the same ledger");
            assert_eq!(r1.net.wire_bytes, r1.net.online().bytes, "measured == modeled");
            assert_ne!(r1.count_share, r2.count_share, "shares stay split");
        }
    }

    #[test]
    fn party_pipeline_in_ot_mode_carries_the_offline_ledger() {
        use cargo_mpc::OfflineMode;
        let g = erdos_renyi(30, 0.3, 5);
        let cfg = CargoConfig::new(2.0)
            .with_seed(4)
            .with_offline(OfflineMode::OtExtension);
        let mono = CargoSystem::new(cfg).run(&g);
        let (r1, r2) = run_party_local(&g, &cfg);
        assert_eq!(r1.noisy_count, mono.noisy_count);
        assert_eq!(r1.net, mono.net, "offline ledger included");
        assert_eq!(r2.net, mono.net);
        assert!(!r1.net.offline.is_empty());
    }

    #[test]
    fn pooled_party_pipeline_matches_the_inline_ot_run() {
        use cargo_mpc::OfflineMode;
        let g = erdos_renyi(30, 0.3, 5);
        let base = CargoConfig::new(2.0)
            .with_seed(4)
            .with_threads(2)
            .with_offline(OfflineMode::OtExtension);
        let (i1, _) = run_party_local(&g, &base);
        let pooled_cfg = base.with_factory_threads(2).with_pool_depth(1);
        let (p1, p2) = run_party_local(&g, &pooled_cfg);
        assert_eq!(p1.noisy_count, i1.noisy_count);
        assert_eq!(p1.count_share, i1.count_share, "bit-identical shares");
        assert_eq!(p1.net, i1.net, "modeled ledger unchanged by pooling");
        assert!(p1.pool.fills > 0, "the factory actually ran");
        assert_eq!(p1.pool, p2.pool, "both parties' pools fill identically");
        assert_eq!(i1.pool, cargo_mpc::PoolStats::default());
    }

    #[test]
    fn sparse_party_pipeline_opens_the_dense_noisy_count() {
        let g = barabasi_albert(70, 4, 13);
        let base = CargoConfig::new(2.0).with_seed(6).with_threads(2);
        let (d1, _) = run_party_local(&g, &base);
        let sparse_cfg = base.with_schedule(crate::ScheduleKind::Sparse);
        let mono = CargoSystem::new(sparse_cfg).run(&g);
        let (s1, s2) = run_party_local(&g, &sparse_cfg);
        // Same release as the dense schedule, same ledger as the
        // sparse monolithic run, far fewer evaluated triples.
        assert_eq!(s1.noisy_count, d1.noisy_count, "schedule-invariant release");
        assert_eq!(s1.noisy_count, mono.noisy_count);
        assert_eq!(s1.net, mono.net, "party ledger == sparse monolithic ledger");
        assert_eq!(s2.net, mono.net);
        assert_eq!(s1.net.wire_bytes, s1.net.online().bytes, "measured == modeled");
        assert!(s1.triples < d1.triples / 10, "{} vs {}", s1.triples, d1.triples);
    }

    #[test]
    fn reports_are_identical_except_the_secret_share() {
        let g = barabasi_albert(60, 3, 9);
        let cfg = CargoConfig::new(1.5).with_seed(2);
        let (r1, mut r2) = run_party_local(&g, &cfg);
        assert_eq!(r1.role, ServerId::S1);
        assert_eq!(r2.role, ServerId::S2);
        // Erase the two fields that legitimately differ…
        r2.role = ServerId::S1;
        r2.count_share = r1.count_share;
        // …and everything else must match exactly.
        assert_eq!(r1, r2);
    }
}
