//! Configuration of a CARGO run.

use cargo_dp::{Composition, EpsilonSplit, PrivacyBudget};
use cargo_mpc::{Backpressure, OfflineMode, PoolPolicy};

/// Selects the inner evaluation kernel of the Count phase.
///
/// Both kernels produce **bit-identical** shares, openings, and online
/// `NetStats` ledgers (pinned by `crates/core/tests/
/// kernel_equivalence.rs`); they differ only in wall-clock. The scalar
/// kernel is retained for A/B benchmarking (`bench_mg_kernel`) and as
/// the readable reference of the batched arithmetic.
///
/// ```
/// use cargo_core::CountKernel;
/// assert_eq!("scalar".parse::<CountKernel>(), Ok(CountKernel::Scalar));
/// assert_eq!("batch".parse::<CountKernel>(), Ok(CountKernel::Bitsliced));
/// assert_eq!(CountKernel::default(), CountKernel::Bitsliced);
/// assert_eq!(CountKernel::Bitsliced.to_string(), "bitsliced");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CountKernel {
    /// One Multiplication Group at a time: the direct transcription of
    /// the protocol arithmetic.
    Scalar,
    /// The default: structure-of-arrays batches over `u64xN` lanes
    /// ([`cargo_mpc::mul3_batch`]) — whole scheduler blocks per call,
    /// one slab opening per round.
    #[default]
    Bitsliced,
}

impl std::str::FromStr for CountKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(CountKernel::Scalar),
            "bitsliced" | "batch" => Ok(CountKernel::Bitsliced),
            other => Err(format!(
                "unknown kernel {other:?} (expected \"scalar\" or \"bitsliced\")"
            )),
        }
    }
}

impl std::fmt::Display for CountKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CountKernel::Scalar => "scalar",
            CountKernel::Bitsliced => "bitsliced",
        })
    }
}

/// Selects the wire the Count phase's openings travel over.
///
/// Results are **bit-identical** across transports (pinned by
/// `crates/core/tests/transport_equivalence.rs`); only where the bytes
/// physically live changes — and with [`TransportKind::Tcp`] the
/// modeled byte ledger is *measured* against real sockets
/// ([`cargo_mpc::NetStats::wire_bytes`]).
///
/// ```
/// use cargo_core::TransportKind;
/// assert_eq!("memory".parse::<TransportKind>(), Ok(TransportKind::Memory));
/// assert_eq!("tcp".parse::<TransportKind>(), Ok(TransportKind::Tcp));
/// assert_eq!(TransportKind::default(), TransportKind::Memory);
/// assert_eq!(TransportKind::Tcp.to_string(), "tcp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// The default in-process path: the fast kernel's openings stay in
    /// memory and the wire is the modeled ledger (the message-passing
    /// runtime over the in-memory *byte* transport is exercised by the
    /// test suites and `party --role local`).
    #[default]
    Memory,
    /// The Count phase runs on the sharded message-passing runtime
    /// over **real loopback TCP sockets** — every opening crosses the
    /// kernel network stack as an encoded frame and is byte-counted.
    /// The two-OS-process deployment shape is the `party` binary.
    Tcp,
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "memory" | "mem" => Ok(TransportKind::Memory),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!(
                "unknown transport {other:?} (expected \"memory\" or \"tcp\")"
            )),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransportKind::Memory => "memory",
            TransportKind::Tcp => "tcp",
        })
    }
}

/// Selects which triples the Count phase schedules.
///
/// The dense cube is the paper's fully-oblivious `O(n³)` walk; the
/// sparse schedule evaluates only the triples a **public** candidate
/// structure (the degree-ordered wedge closure of the projected
/// support) admits. Shares of every surviving triple are
/// **bit-identical** across the two schedules (pinned by
/// `crates/core/tests/sparse_equivalence.rs`): MG material and input
/// shares are keyed per `(i, j, k)` triple, so the schedule changes
/// only *which* triples are touched, never their values. See
/// PROTOCOL.md § "Sparse Count schedule" for the leakage analysis.
///
/// ```
/// use cargo_core::ScheduleKind;
/// assert_eq!("dense".parse::<ScheduleKind>(), Ok(ScheduleKind::Dense));
/// assert_eq!("sparse".parse::<ScheduleKind>(), Ok(ScheduleKind::Sparse));
/// assert_eq!(
///     "sparse-stream".parse::<ScheduleKind>(),
///     Ok(ScheduleKind::SparseStream)
/// );
/// assert_eq!(ScheduleKind::default(), ScheduleKind::Dense);
/// assert_eq!(ScheduleKind::Sparse.to_string(), "sparse");
/// assert_eq!(ScheduleKind::SparseStream.to_string(), "sparse-stream");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScheduleKind {
    /// The default: every ordered triple `i < j < k` of the full cube —
    /// fully oblivious, cost independent of the input graph.
    #[default]
    Dense,
    /// Candidate-driven: only the `(i, j, k)` triples admitted by the
    /// public candidate structure built from the projected support.
    /// Reveals the candidate set's shape (already public in the
    /// local-projection deployment), in exchange for triple counts
    /// proportional to the graph's wedge mass instead of `n³`.
    Sparse,
    /// The same triples as [`ScheduleKind::Sparse`] — same chunks, same
    /// shares, bit for bit — but streamed from CSR prefix sums instead
    /// of materialising every candidate pair and `k`-list up front:
    /// peak memory O(chunk) instead of O(#candidates), which is what
    /// makes million-node graphs fit. Evaluated by the hybrid
    /// dense-block tile kernel (see
    /// [`crate::count::DEFAULT_TILE_THRESHOLD`]).
    SparseStream,
}

impl std::str::FromStr for ScheduleKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "dense" | "cube" => Ok(ScheduleKind::Dense),
            "sparse" => Ok(ScheduleKind::Sparse),
            "sparse-stream" | "stream" => Ok(ScheduleKind::SparseStream),
            other => Err(format!(
                "unknown schedule {other:?} (expected \"dense\", \"sparse\", or \"sparse-stream\")"
            )),
        }
    }
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScheduleKind::Dense => "dense",
            ScheduleKind::Sparse => "sparse",
            ScheduleKind::SparseStream => "sparse-stream",
        })
    }
}

/// Tunable parameters of the CARGO pipeline (defaults follow the
/// paper's experimental setting, Section V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CargoConfig {
    /// Total privacy budget `ε = ε₁ + ε₂`.
    pub epsilon: f64,
    /// Fraction of ε spent on the `Max` round (`ε₁ = fraction · ε`);
    /// the paper uses 0.1.
    pub split_fraction: f64,
    /// Fixed-point fractional bits for encoding noise in the ring.
    pub frac_bits: u32,
    /// Root seed for every random choice (dealer streams, user shares,
    /// noise) — fixed seed ⇒ bit-identical run.
    pub seed: u64,
    /// Worker threads for the `O(n³)` secure count (0 = all cores).
    /// Governs every Count entry point: the fast kernel, the sharded
    /// message-passing runtime, and the sampled estimator.
    pub threads: usize,
    /// Triples per Count communication round / PRG block
    /// (0 = [`crate::count_sched::DEFAULT_COUNT_BATCH`]). Shares are
    /// identical for every batch size; only rounds and wall-clock
    /// change.
    pub batch: usize,
    /// Whether to run the similarity-based projection (disable only for
    /// ablation studies; without projection the sensitivity is `n`).
    pub projection: bool,
    /// How the Count phase's correlated randomness is precomputed:
    /// the seeded trusted dealer (default, zero offline cost) or the
    /// OT-extension offline phase (real preprocessing traffic,
    /// reported in [`cargo_mpc::NetStats::offline`]). Shares are
    /// bit-identical either way.
    pub offline: OfflineMode,
    /// Inner Count kernel: the batched structure-of-arrays evaluation
    /// (default) or the scalar per-triple transcription, retained for
    /// A/B benching. Shares are bit-identical either way.
    pub kernel: CountKernel,
    /// Wire the Count openings travel over: in-process memory
    /// (default) or real loopback TCP sockets. Results are
    /// bit-identical either way; TCP additionally *measures* the byte
    /// ledger on a real wire.
    pub transport: TransportKind,
    /// Background offline triple-factory threads (OT mode only):
    /// `0` (the default) preprocesses inline on the query path; `>= 1`
    /// decouples generation onto a [`cargo_mpc::TriplePool`]. Shares
    /// are bit-identical at every setting.
    pub factory_threads: usize,
    /// Bounded triple-pool depth in chunks
    /// (0 = [`cargo_mpc::DEFAULT_POOL_DEPTH`]). Ignored when
    /// `factory_threads == 0`.
    pub pool_depth: usize,
    /// What a drained pool does to the query path: block until the
    /// chunk is ready (default) or fail fast with a loud error.
    pub pool_backpressure: Backpressure,
    /// Which triples the Count phase schedules: the fully-oblivious
    /// dense cube (default) or the candidate-driven sparse walk over
    /// the public support. Shares of surviving triples are
    /// bit-identical either way.
    pub schedule: ScheduleKind,
    /// Density threshold θ of the hybrid tile kernel on the
    /// [`ScheduleKind::SparseStream`] schedule: candidate runs of at
    /// least θ triples stream through the fused kernel, shorter runs
    /// are gathered across pairs into full-width SIMD tiles. Public,
    /// and **never** changes shares, triples, or the wire ledger —
    /// only kernel evaluation order (`0` streams everything,
    /// `u32::MAX` gathers everything). Defaults to
    /// [`crate::count::DEFAULT_TILE_THRESHOLD`]. Ignored by the other
    /// schedules.
    pub tile_threshold: u32,
    /// Continuous-release horizon: how many delta epochs `--mode
    /// serve` budgets for. Ignored by the one-shot pipeline.
    pub horizon: u64,
    /// How per-epoch releases compose against ε in serve mode: an even
    /// fixed split or the binary-tree mechanism. Ignored by the
    /// one-shot pipeline.
    pub composition: Composition,
    /// How long a wire recv blocks on a silent peer before the epoch
    /// fails typed ([`cargo_mpc::RecvError::Timeout`]). Defaults to
    /// [`cargo_mpc::DEFAULT_RECV_TIMEOUT`]; threaded into every
    /// runtime recv path through [`cargo_mpc::Transport::recv_timeout`].
    pub recv_timeout: std::time::Duration,
}

impl CargoConfig {
    /// Creates a config with the paper's defaults and the given total ε.
    pub fn new(epsilon: f64) -> Self {
        CargoConfig {
            epsilon,
            split_fraction: 0.1,
            frac_bits: 16,
            seed: 0,
            threads: 0,
            batch: 0,
            projection: true,
            offline: OfflineMode::TrustedDealer,
            kernel: CountKernel::Bitsliced,
            transport: TransportKind::Memory,
            factory_threads: 0,
            pool_depth: 0,
            pool_backpressure: Backpressure::Block,
            schedule: ScheduleKind::Dense,
            tile_threshold: crate::count::DEFAULT_TILE_THRESHOLD,
            horizon: 16,
            composition: Composition::Fixed,
            recv_timeout: cargo_mpc::DEFAULT_RECV_TIMEOUT,
        }
    }

    /// Sets the wire recv timeout (how long a party waits on a silent
    /// peer before failing the epoch typed).
    ///
    /// ```
    /// use cargo_core::CargoConfig;
    /// use std::time::Duration;
    /// let cfg = CargoConfig::new(2.0).with_recv_timeout(Duration::from_secs(5));
    /// assert_eq!(cfg.recv_timeout, Duration::from_secs(5));
    /// assert_eq!(CargoConfig::new(2.0).recv_timeout, cargo_mpc::DEFAULT_RECV_TIMEOUT);
    /// ```
    pub fn with_recv_timeout(mut self, recv_timeout: std::time::Duration) -> Self {
        self.recv_timeout = recv_timeout;
        self
    }

    /// Sets the continuous-release horizon (serve mode).
    ///
    /// ```
    /// use cargo_core::CargoConfig;
    /// assert_eq!(CargoConfig::new(2.0).with_horizon(8).horizon, 8);
    /// ```
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Selects the per-epoch composition scheme (serve mode).
    ///
    /// ```
    /// use cargo_core::CargoConfig;
    /// use cargo_dp::Composition;
    /// let cfg = CargoConfig::new(2.0).with_composition(Composition::BinaryTree);
    /// assert_eq!(cfg.composition, Composition::BinaryTree);
    /// ```
    pub fn with_composition(mut self, composition: Composition) -> Self {
        self.composition = composition;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the ε₁ fraction.
    pub fn with_split_fraction(mut self, fraction: f64) -> Self {
        self.split_fraction = fraction;
        self
    }

    /// Sets the secure-count worker-thread count (0 = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the secure-count batch size (0 = default).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Disables projection (ablation).
    pub fn without_projection(mut self) -> Self {
        self.projection = false;
        self
    }

    /// Selects the offline-phase implementation.
    ///
    /// ```
    /// use cargo_core::CargoConfig;
    /// use cargo_mpc::OfflineMode;
    /// let cfg = CargoConfig::new(2.0).with_offline(OfflineMode::OtExtension);
    /// assert_eq!(cfg.offline, OfflineMode::OtExtension);
    /// ```
    pub fn with_offline(mut self, offline: OfflineMode) -> Self {
        self.offline = offline;
        self
    }

    /// Selects the Count kernel.
    ///
    /// ```
    /// use cargo_core::{CargoConfig, CountKernel};
    /// let cfg = CargoConfig::new(2.0).with_kernel(CountKernel::Scalar);
    /// assert_eq!(cfg.kernel, CountKernel::Scalar);
    /// ```
    pub fn with_kernel(mut self, kernel: CountKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the Count wire.
    ///
    /// ```
    /// use cargo_core::{CargoConfig, TransportKind};
    /// let cfg = CargoConfig::new(2.0).with_transport(TransportKind::Tcp);
    /// assert_eq!(cfg.transport, TransportKind::Tcp);
    /// ```
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the background triple-factory thread count (0 = inline
    /// preprocessing, the default).
    ///
    /// ```
    /// use cargo_core::CargoConfig;
    /// let cfg = CargoConfig::new(2.0).with_factory_threads(2);
    /// assert_eq!(cfg.factory_threads, 2);
    /// assert!(cfg.pool_policy().enabled());
    /// ```
    pub fn with_factory_threads(mut self, factory_threads: usize) -> Self {
        self.factory_threads = factory_threads;
        self
    }

    /// Sets the bounded triple-pool depth (0 = default).
    ///
    /// ```
    /// use cargo_core::CargoConfig;
    /// let cfg = CargoConfig::new(2.0).with_factory_threads(1).with_pool_depth(8);
    /// assert_eq!(cfg.pool_policy().depth, 8);
    /// ```
    pub fn with_pool_depth(mut self, pool_depth: usize) -> Self {
        self.pool_depth = pool_depth;
        self
    }

    /// Selects the drained-pool backpressure discipline.
    ///
    /// ```
    /// use cargo_core::CargoConfig;
    /// use cargo_mpc::Backpressure;
    /// let cfg = CargoConfig::new(2.0).with_pool_backpressure(Backpressure::FailFast);
    /// assert_eq!(cfg.pool_backpressure, Backpressure::FailFast);
    /// ```
    pub fn with_pool_backpressure(mut self, backpressure: Backpressure) -> Self {
        self.pool_backpressure = backpressure;
        self
    }

    /// Selects the Count schedule.
    ///
    /// ```
    /// use cargo_core::{CargoConfig, ScheduleKind};
    /// let cfg = CargoConfig::new(2.0).with_schedule(ScheduleKind::Sparse);
    /// assert_eq!(cfg.schedule, ScheduleKind::Sparse);
    /// ```
    pub fn with_schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the hybrid tile kernel's density threshold θ
    /// ([`ScheduleKind::SparseStream`] only; `0` is meaningful — it
    /// streams every run — so there is no zero-means-default sentinel
    /// here).
    ///
    /// ```
    /// use cargo_core::{CargoConfig, DEFAULT_TILE_THRESHOLD};
    /// let cfg = CargoConfig::new(2.0).with_tile_threshold(32);
    /// assert_eq!(cfg.tile_threshold, 32);
    /// assert_eq!(CargoConfig::new(2.0).tile_threshold, DEFAULT_TILE_THRESHOLD);
    /// ```
    pub fn with_tile_threshold(mut self, tile_threshold: u32) -> Self {
        self.tile_threshold = tile_threshold;
        self
    }

    /// The resolved [`PoolPolicy`] of this config: disabled (inline)
    /// when `factory_threads == 0`, otherwise the configured factory
    /// width, depth (0 ⇒ [`cargo_mpc::DEFAULT_POOL_DEPTH`]) and
    /// backpressure.
    pub fn pool_policy(&self) -> PoolPolicy {
        PoolPolicy {
            factory_threads: self.factory_threads,
            depth: if self.pool_depth == 0 {
                cargo_mpc::DEFAULT_POOL_DEPTH
            } else {
                self.pool_depth
            },
            backpressure: self.pool_backpressure,
        }
    }

    /// The validated budget split `(ε₁, ε₂)`.
    pub fn epsilon_split(&self) -> EpsilonSplit {
        PrivacyBudget::new(self.epsilon).split(self.split_fraction)
    }

    /// Effective thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Effective Count batch size.
    pub fn effective_batch(&self) -> usize {
        if self.batch == 0 {
            crate::count_sched::DEFAULT_COUNT_BATCH
        } else {
            self.batch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CargoConfig::new(2.0);
        let s = c.epsilon_split();
        assert!((s.epsilon1 - 0.2).abs() < 1e-12);
        assert!((s.epsilon2 - 1.8).abs() < 1e-12);
        assert!(c.projection);
        assert_eq!(c.frac_bits, 16);
    }

    #[test]
    fn builder_methods_compose() {
        let c = CargoConfig::new(1.0)
            .with_seed(9)
            .with_split_fraction(0.5)
            .with_threads(2)
            .with_batch(16)
            .with_offline(OfflineMode::OtExtension)
            .without_projection();
        assert_eq!(c.seed, 9);
        assert_eq!(c.threads, 2);
        assert_eq!(c.batch, 16);
        assert_eq!(c.offline, OfflineMode::OtExtension);
        assert!(!c.projection);
        assert!((c.epsilon_split().epsilon1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn offline_defaults_to_the_trusted_dealer() {
        assert_eq!(CargoConfig::new(1.0).offline, OfflineMode::TrustedDealer);
    }

    #[test]
    fn kernel_defaults_to_bitsliced_and_parses() {
        assert_eq!(CargoConfig::new(1.0).kernel, CountKernel::Bitsliced);
        assert_eq!(
            CargoConfig::new(1.0).with_kernel(CountKernel::Scalar).kernel,
            CountKernel::Scalar
        );
        assert_eq!("bitsliced".parse::<CountKernel>(), Ok(CountKernel::Bitsliced));
        assert!("quantum".parse::<CountKernel>().is_err());
        assert_eq!(CountKernel::Scalar.to_string(), "scalar");
    }

    #[test]
    fn effective_threads_is_positive() {
        assert!(CargoConfig::new(1.0).effective_threads() >= 1);
        assert_eq!(CargoConfig::new(1.0).with_threads(3).effective_threads(), 3);
    }

    #[test]
    fn effective_batch_resolves_default() {
        assert_eq!(
            CargoConfig::new(1.0).effective_batch(),
            crate::count_sched::DEFAULT_COUNT_BATCH
        );
        assert_eq!(CargoConfig::new(1.0).with_batch(7).effective_batch(), 7);
    }

    #[test]
    fn schedule_defaults_to_dense_and_parses() {
        assert_eq!(CargoConfig::new(1.0).schedule, ScheduleKind::Dense);
        assert_eq!(
            CargoConfig::new(1.0)
                .with_schedule(ScheduleKind::Sparse)
                .schedule,
            ScheduleKind::Sparse
        );
        assert_eq!("cube".parse::<ScheduleKind>(), Ok(ScheduleKind::Dense));
        assert_eq!(
            "stream".parse::<ScheduleKind>(),
            Ok(ScheduleKind::SparseStream)
        );
        assert!("hexagonal".parse::<ScheduleKind>().is_err());
        assert_eq!(ScheduleKind::Dense.to_string(), "dense");
    }

    #[test]
    fn tile_threshold_defaults_and_overrides() {
        assert_eq!(
            CargoConfig::new(1.0).tile_threshold,
            crate::count::DEFAULT_TILE_THRESHOLD
        );
        assert_eq!(CargoConfig::new(1.0).with_tile_threshold(0).tile_threshold, 0);
        assert_eq!(
            CargoConfig::new(1.0)
                .with_tile_threshold(u32::MAX)
                .tile_threshold,
            u32::MAX
        );
    }

    #[test]
    fn transport_defaults_to_memory_and_parses() {
        assert_eq!(CargoConfig::new(1.0).transport, TransportKind::Memory);
        assert_eq!(
            CargoConfig::new(1.0)
                .with_transport(TransportKind::Tcp)
                .transport,
            TransportKind::Tcp
        );
        assert_eq!("mem".parse::<TransportKind>(), Ok(TransportKind::Memory));
        assert!("carrier-pigeon".parse::<TransportKind>().is_err());
        assert_eq!(TransportKind::Memory.to_string(), "memory");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_epsilon_rejected_at_split() {
        CargoConfig::new(-1.0).epsilon_split();
    }
}
