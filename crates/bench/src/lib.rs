//! # cargo-bench — experiment harness for the CARGO reproduction
//!
//! One subcommand per table and figure of the paper's evaluation
//! (Section V), runnable via the `experiments` binary:
//!
//! ```text
//! cargo run --release -p cargo-bench --bin experiments -- <cmd> [flags]
//!
//!   table2     Theoretical comparison (Table II)
//!   table3     d'_max vs smooth/residual sensitivity (Table III)
//!   table4     Dataset statistics (Table IV)
//!   table5     Noisy maximum degrees vs ε (Table V)
//!   fig5-6     l2 loss + relative error vs ε, 4 graphs (Figs. 5/6)
//!   fig7-8     l2 loss + relative error vs n, Facebook/Wiki (Figs. 7/8)
//!   fig9-10    projection loss vs θ, both metrics (Figs. 9/10)
//!   fig11      running time vs n, Facebook (Fig. 11)
//!   fig12      running time vs n, Wiki + Count share (Fig. 12)
//!   extensions Observation-1 check, projection ablation, smooth-
//!              sensitivity comparison, Node-DP comparison
//!   all        everything above
//!
//! (`fig5`…`fig10` also work individually as aliases.)
//!
//! Flags: --n <users> --trials <t> --seed <s> --out-dir <dir>
//!        --data-dir <dir> --threads <w> --batch <b>
//!        --offline-mode <dealer|ot> --quick
//!
//! Three further binaries serve the perf-regression harness:
//! `bench_secure_count` sweeps the online secure count over
//! `n × threads × batch` and writes `BENCH_secure_count.json`;
//! `bench_offline` sweeps the OT-extension offline phase and writes
//! `BENCH_offline.json` (offline bytes/MG are gated exactly);
//! `bench_compare` diffs such a report against the committed baseline
//! (`crates/bench/baselines/`) with a ±20% wall-clock gate and an
//! exact bytes/triple gate.
//! ```
//!
//! Each experiment prints a Markdown table (the same rows/series the
//! paper reports) and writes a CSV into `--out-dir` (default
//! `results/`). With `--data-dir` pointing at real SNAP edge lists the
//! harness uses them; otherwise it uses the calibrated synthetic
//! presets (DESIGN.md §4).

pub mod baseline;
pub mod cli;
pub mod datasets;
pub mod experiments;
pub mod output;
pub mod runners;

pub use cli::Options;
pub use datasets::ExperimentGraph;
pub use output::Table;
