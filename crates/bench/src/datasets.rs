//! Dataset handling for the experiments.
//!
//! The paper subsamples each graph to `n` users (default 2000) for the
//! utility experiments and sweeps `n` for the scaling experiments.
//! [`ExperimentGraph`] caches the full graph (real or synthetic) and
//! hands out induced prefixes.

use crate::cli::Options;
use cargo_graph::generators::presets::{DataOrigin, SnapDataset};
use cargo_graph::Graph;

/// A dataset loaded once, subsampled many times.
#[derive(Debug, Clone)]
pub struct ExperimentGraph {
    /// Which dataset this is.
    pub dataset: SnapDataset,
    /// The full graph.
    pub full: Graph,
    /// Where it came from (real file vs synthetic preset).
    pub origin: DataOrigin,
}

impl ExperimentGraph {
    /// Loads (or synthesizes) a dataset according to the CLI options,
    /// logging which source was actually used — when `--data-dir` is
    /// given but the file is missing or unreadable, the run silently
    /// falling back to synthetic data would invalidate any absolute
    /// numbers, so the provenance line makes the substitution
    /// impossible to miss.
    pub fn load(dataset: SnapDataset, opts: &Options) -> ExperimentGraph {
        let (full, origin) =
            dataset.load_or_synthesize(opts.data_dir.as_deref(), opts.seed);
        match (origin, &opts.data_dir) {
            (DataOrigin::RealEdgeList, Some(dir)) => eprintln!(
                "[data] {dataset:?}: REAL edge list from {} ({} nodes, {} edges)",
                dir.display(),
                full.n(),
                full.edge_count()
            ),
            (DataOrigin::Synthetic, Some(dir)) => eprintln!(
                "[data] {dataset:?}: no readable edge list under {} — \
                 using the CALIBRATED SYNTHETIC preset ({} nodes, {} edges)",
                dir.display(),
                full.n(),
                full.edge_count()
            ),
            (DataOrigin::Synthetic, None) => eprintln!(
                "[data] {dataset:?}: calibrated synthetic preset ({} nodes, {} edges); \
                 pass --data-dir to use the real SNAP edge list",
                full.n(),
                full.edge_count()
            ),
            (DataOrigin::RealEdgeList, None) => unreachable!("real data needs --data-dir"),
        }
        ExperimentGraph {
            dataset,
            full,
            origin,
        }
    }

    /// The experiment subgraph on the first `n` users (the paper's
    /// subsampling), clamped to the dataset size.
    pub fn prefix(&self, n: usize) -> Graph {
        self.full.induced_prefix(n)
    }

    /// Short provenance string for table footers.
    pub fn origin_label(&self) -> &'static str {
        match self.origin {
            DataOrigin::RealEdgeList => "real edge list",
            DataOrigin::Synthetic => "calibrated synthetic",
        }
    }
}

/// The ε sweep of Figs. 5/6: 0.5 to 3 in steps of 0.5.
pub const EPSILON_SWEEP: [f64; 6] = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0];

/// The n sweep of Figs. 7/8/11/12 (×10³ in the paper's axis labels).
pub const N_SWEEP: [usize; 5] = [500, 1_000, 2_000, 3_000, 4_000];

/// The θ sweeps of Figs. 9/10, per dataset (x-axes of the paper plots).
pub fn theta_sweep(dataset: SnapDataset) -> Vec<usize> {
    match dataset {
        SnapDataset::Facebook | SnapDataset::Wiki => vec![10, 50, 100, 250, 500, 1000],
        SnapDataset::HepPh => vec![10, 100, 200, 400, 600, 800],
        SnapDataset::Enron => vec![100, 500, 1000, 1500, 2000, 2500],
        _ => vec![10, 50, 100, 250, 500, 1000],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_prefixes() {
        let opts = Options {
            n: 100,
            ..Options::default()
        };
        let eg = ExperimentGraph::load(SnapDataset::GrQc, &opts);
        assert_eq!(eg.origin_label(), "calibrated synthetic");
        let sub = eg.prefix(100);
        assert_eq!(sub.n(), 100);
        assert!(sub.edge_count() > 0, "prefix must retain hub edges");
    }

    #[test]
    fn data_dir_loads_real_edge_lists_with_fallback() {
        // The CLI half of the SNAP-data story: a readable
        // <data_dir>/<name>.txt is loaded through cargo_graph::io; a
        // missing one falls back to the calibrated preset.
        let dir = std::env::temp_dir().join("cargo_bench_datasets_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}.txt", SnapDataset::GrQc.name()));
        std::fs::write(&path, "# tiny triangle\n0\t1\n1\t2\n2\t0\n").unwrap();
        let opts = Options {
            data_dir: Some(dir.clone()),
            ..Options::default()
        };
        let real = ExperimentGraph::load(SnapDataset::GrQc, &opts);
        assert_eq!(real.origin, DataOrigin::RealEdgeList);
        assert_eq!(real.origin_label(), "real edge list");
        assert_eq!(real.full.edge_count(), 3);
        // Another dataset has no file in the dir: calibrated fallback.
        let fallback = ExperimentGraph::load(SnapDataset::Wiki, &opts);
        assert_eq!(fallback.origin, DataOrigin::Synthetic);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweeps_match_paper_axes() {
        assert_eq!(EPSILON_SWEEP.len(), 6);
        assert_eq!(N_SWEEP, [500, 1000, 2000, 3000, 4000]);
        assert_eq!(theta_sweep(SnapDataset::Enron).last(), Some(&2500));
        assert_eq!(theta_sweep(SnapDataset::HepPh).last(), Some(&800));
    }
}
