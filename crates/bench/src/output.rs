//! Table formatting (Markdown to stdout) and CSV persistence.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table that renders to Markdown and CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    footnotes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            footnotes: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Appends a footnote printed under the table.
    pub fn footnote(&mut self, note: &str) {
        self.footnotes.push(note.to_string());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders aligned Markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&dashes, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for note in &self.footnotes {
            let _ = writeln!(out, "\n_{note}_");
        }
        out
    }

    /// Writes the table as CSV into `dir/name.csv` (creating `dir`).
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let file = std::fs::File::create(&path)?;
        let mut w = std::io::BufWriter::new(file);
        writeln!(w, "{}", self.headers.join(","))?;
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(w, "{}", escaped.join(","))?;
        }
        w.flush()?;
        Ok(path)
    }
}

/// Compact scientific formatting matching the paper's figures
/// (e.g. `1.09e5`, `2.11e-3`).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let exp = x.abs().log10().floor() as i32;
    if (-2..=3).contains(&exp) {
        format!("{x:.3}")
    } else {
        let mantissa = x / 10f64.powi(exp);
        format!("{mantissa:.2}e{exp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new("Demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.footnote("note");
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | long-header |"));
        assert!(md.contains("_note_"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("csv", &["x", "y"]);
        t.row(vec!["1".into(), "he,llo".into()]);
        let dir = std::env::temp_dir().join("cargo_bench_output_test");
        let path = t.write_csv(&dir, "demo").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x,y\n1,\"he,llo\"\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(109_000.0), "1.09e5");
        assert_eq!(sci(0.00211), "2.11e-3");
        assert_eq!(sci(2.5), "2.500");
    }
}
