//! One module per group of paper artifacts; [`run`] dispatches a
//! subcommand name to its experiment.

pub mod extensions;
pub mod projection;
pub mod runtime;
pub mod sparse;
pub mod tables;
pub mod utility;

use crate::cli::Options;
use crate::output::Table;

/// All subcommands in paper order.
pub const ALL: [&str; 10] = [
    "table2", "table3", "table4", "table5", "fig5-6", "fig7-8", "fig9-10", "fig11", "fig12",
    "extensions",
];

/// Runs one experiment by name, printing its tables and writing CSVs.
/// Returns the tables for programmatic use (tests).
pub fn run(cmd: &str, opts: &Options) -> Result<Vec<Table>, String> {
    let tables = match cmd {
        "table2" => tables::table2(opts),
        "table3" => tables::table3(opts),
        "table4" => tables::table4(opts),
        "table5" => tables::table5(opts),
        "fig5" | "fig6" | "fig5-6" => utility::fig5_and_6(opts),
        "fig7" | "fig8" | "fig7-8" => utility::fig7_and_8(opts),
        "fig9" | "fig10" | "fig9-10" => projection::fig9_and_10(opts),
        "fig11" => runtime::fig11_or_12(opts, runtime::RuntimeGraph::Facebook),
        "fig12" => runtime::fig11_or_12(opts, runtime::RuntimeGraph::Wiki),
        // Not in ALL: the target-size row scales with --n, so `all`
        // smoke runs would pay for a large-graph secure count.
        "sparse" => sparse::sparse_large(opts),
        "ext-sensitivity" => extensions::ext_sensitivity(opts),
        "ext-nodedp" => extensions::ext_node_dp(opts),
        "ext-homogeneity" => extensions::ext_homogeneity(opts),
        "ext-ablation" => extensions::ext_projection_ablation(opts),
        "extensions" => {
            let mut all = extensions::ext_homogeneity(opts);
            all.extend(extensions::ext_projection_ablation(opts));
            all.extend(extensions::ext_sensitivity(opts));
            all.extend(extensions::ext_node_dp(opts));
            all
        }
        _ => return Err(format!("unknown experiment {cmd:?}")),
    };
    for t in &tables {
        print!("{}", t.to_markdown());
    }
    Ok(tables)
}
