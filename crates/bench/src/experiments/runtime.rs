//! Figures 11/12: running time vs n.
//!
//! Fig. 11 (Facebook) and Fig. 12 (Wiki) plot wall-clock time of the
//! three protocols as n grows; Fig. 12's extra series is the `Count`
//! step alone, showing it dominates CARGO's runtime (≥ 90%). Absolute
//! numbers differ from the paper's unspecified testbed; the reproduced
//! claims are the growth shapes and the Count share (DESIGN.md §4).

use crate::cli::Options;
use crate::datasets::{ExperimentGraph, N_SWEEP};
use crate::output::Table;
use crate::runners::{run_cargo_with, run_central, run_local2rounds};
use cargo_graph::generators::presets::SnapDataset;

/// Which dataset a runtime figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeGraph {
    /// Fig. 11.
    Facebook,
    /// Fig. 12.
    Wiki,
}

/// Runs Fig. 11 or 12.
pub fn fig11_or_12(opts: &Options, which: RuntimeGraph) -> Vec<Table> {
    let (ds, fig) = match which {
        RuntimeGraph::Facebook => (SnapDataset::Facebook, "Fig. 11"),
        RuntimeGraph::Wiki => (SnapDataset::Wiki, "Fig. 12"),
    };
    let eg = ExperimentGraph::load(ds, opts);
    let mut t = Table::new(
        &format!("{fig}: running time (s) vs n ({})", ds.display_name()),
        &[
            "n",
            "CentralLap",
            "Local2Rounds",
            "CARGO",
            "Count",
            "Count share",
            "online MB",
            "offline MB",
        ],
    );
    // Timing experiments use one trial (the paper reports single runs);
    // utility noise does not affect wall-clock.
    let trials = 1;
    let sweep: Vec<usize> = if opts.quick {
        N_SWEEP.iter().copied().filter(|&n| n <= 1000).collect()
    } else {
        N_SWEEP.to_vec()
    };
    for &n in &sweep {
        let sub = eg.prefix(n);
        let central = run_central(&sub, 2.0, trials, opts.seed);
        let local = run_local2rounds(&sub, 2.0, trials, opts.seed);
        let cargo = run_cargo_with(
            &sub,
            2.0,
            trials,
            opts.seed,
            opts.threads,
            opts.batch,
            opts.offline,
            opts.kernel,
            opts.transport,
            opts.pool_policy(),
            opts.schedule,
            opts.recv_timeout,
        );
        let share = if cargo.time.as_secs_f64() > 0.0 {
            cargo.count_time.as_secs_f64() / cargo.time.as_secs_f64()
        } else {
            0.0
        };
        t.row(vec![
            n.to_string(),
            format!("{:.4}", central.time.as_secs_f64()),
            format!("{:.4}", local.time.as_secs_f64()),
            format!("{:.4}", cargo.time.as_secs_f64()),
            format!("{:.4}", cargo.count_time.as_secs_f64()),
            format!("{:.0}%", share * 100.0),
            format!("{:.2}", cargo.net.bytes as f64 / 1e6),
            format!("{:.2}", cargo.net.offline.bytes as f64 / 1e6),
        ]);
    }
    t.footnote(&format!(
        "eps = 2; absolute times are this machine's ({} threads); offline MB is 0 under --offline-mode dealer and the OT-extension preprocessing cost under --offline-mode ot; the reproduced claims are the n^3 growth and the Count share.",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    ));
    let name = match which {
        RuntimeGraph::Facebook => "fig11_facebook",
        RuntimeGraph::Wiki => "fig12_wiki",
    };
    let _ = t.write_csv(&opts.out_dir, name);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_figure_runs_in_quick_mode() {
        let opts = Options {
            n: 300,
            trials: 1,
            quick: true,
            out_dir: std::env::temp_dir().join("cargo_bench_runtime_test"),
            ..Options::default()
        };
        let tables = fig11_or_12(&opts, RuntimeGraph::Facebook);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2); // 500 and 1000
    }
}
