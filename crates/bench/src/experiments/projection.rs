//! Figures 9/10: projection loss of `Project` vs `GraphProjection`.
//!
//! For each dataset and projection parameter θ, both local projection
//! algorithms run on the *full* graph (projection loss is a plaintext
//! property — no DP noise is involved in these figures); the metric
//! compares the triangle count before and after projection, exactly as
//! the secure count would see it (triple products over the asymmetric
//! matrix).

use crate::cli::Options;
use crate::datasets::{theta_sweep, ExperimentGraph};
use crate::experiments::utility::Metric;
use crate::output::{sci, Table};
use cargo_baselines::random_project_matrix;
use cargo_core::{l2_loss, project_matrix, relative_error};
use cargo_graph::count_triangles_matrix;
use cargo_graph::generators::presets::SnapDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs Figs. 9 and 10 in one pass (both metrics come from the same
/// projections).
pub fn fig9_and_10(opts: &Options) -> Vec<Table> {
    let mut tables = Vec::new();
    for ds in SnapDataset::TABLE4 {
        let eg = ExperimentGraph::load(ds, opts);
        // Projection-loss figures use the graph at the experiment scale;
        // the paper plots them per dataset (full graphs). We subsample
        // Enron-sized graphs to keep the bit matrix in memory, which
        // preserves the similarity-vs-random comparison.
        let cap = if opts.quick { opts.n } else { 8_000 };
        let g = eg.prefix(cap.min(eg.full.n()));
        let matrix = g.to_bit_matrix();
        let degrees = g.degrees();
        // Projection consumes the noisy degrees from Max; use ε₁ at the
        // default budget (ε = 2 ⇒ ε₁ = 0.2) as the pipeline would.
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x9191);
        let noisy = cargo_core::estimate_max_degree(&degrees, 0.2, &mut rng).noisy_degrees;
        let t_before = count_triangles_matrix(&matrix) as f64;
        // One pass per theta computes both metrics for both algorithms.
        let mut rows: Vec<(usize, [f64; 4])> = Vec::new();
        for theta in theta_sweep(ds) {
            // Random projection: average over trials (it is randomized).
            let (mut rand_l2, mut rand_rel) = (0.0, 0.0);
            for trial in 0..opts.trials.max(1) {
                let mut prng =
                    StdRng::seed_from_u64(opts.seed ^ (theta as u64) ^ (trial as u64) << 17);
                let m = random_project_matrix(&matrix, theta, &mut prng);
                let after = count_triangles_matrix(&m) as f64;
                rand_l2 += l2_loss(t_before, after);
                rand_rel += relative_error(t_before, after);
            }
            rand_l2 /= opts.trials.max(1) as f64;
            rand_rel /= opts.trials.max(1) as f64;
            // Similarity projection is deterministic given the noisy degrees.
            let res = project_matrix(&matrix, &degrees, &noisy, theta);
            let after = count_triangles_matrix(&res.matrix) as f64;
            rows.push((
                theta,
                [
                    rand_l2,
                    l2_loss(t_before, after),
                    rand_rel,
                    relative_error(t_before, after),
                ],
            ));
        }
        for (fig, metric) in [("Fig. 9", Metric::L2), ("Fig. 10", Metric::Rel)] {
            let mut t = Table::new(
                &format!(
                    "{fig}: {} of projection loss vs theta ({}, n={})",
                    metric.label(),
                    ds.display_name(),
                    g.n()
                ),
                &["theta", "GraphProjection", "Project"],
            );
            for &(theta, vals) in &rows {
                let (r, s) = if metric == Metric::L2 {
                    (vals[0], vals[1])
                } else {
                    (vals[2], vals[3])
                };
                t.row(vec![theta.to_string(), sci(r), sci(s)]);
            }
            t.footnote(&format!(
                "T before projection = {t_before}; {} trials for the randomized baseline; data: {}.",
                opts.trials,
                eg.origin_label()
            ));
            let name = format!(
                "{}_{}",
                if metric == Metric::L2 { "fig9" } else { "fig10" },
                ds.name()
            );
            let _ = t.write_csv(&opts.out_dir, &name);
            tables.push(t);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_and_10_have_two_tables_per_dataset() {
        let opts = Options {
            n: 150,
            trials: 1,
            quick: true,
            out_dir: std::env::temp_dir().join("cargo_bench_projection_test"),
            ..Options::default()
        };
        let tables = fig9_and_10(&opts);
        assert_eq!(tables.len(), 8);
        for (t, ds) in tables.chunks(2).zip(SnapDataset::TABLE4) {
            assert_eq!(t[0].len(), theta_sweep(ds).len());
            assert_eq!(t[1].len(), theta_sweep(ds).len());
        }
    }
}
