//! The sparse Count schedule at large-graph scale.
//!
//! The dense cube touches `C(n, 3)` triples no matter how sparse the
//! input is — at n = 20 000 that is 1.3 × 10¹² Multiplication Groups,
//! far beyond what the CI box (or the paper's testbed) can evaluate.
//! The candidate-driven schedule (`--schedule sparse`) walks only the
//! triples admitted by the public support structure, so a power-law
//! graph of that size completes a full secure count. This experiment
//! measures exactly that claim:
//!
//! 1. at a small cross-check size, dense and sparse release the
//!    **identical** noisy count (surviving-triple shares are
//!    bit-identical by construction);
//! 2. at the target size, the sparse schedule completes a secure
//!    count the dense cube cannot attempt, and the table reports the
//!    evaluated-triple reduction against `C(n, 3)`.

use crate::cli::Options;
use crate::output::Table;
use crate::runners::trial_seed;
use cargo_core::{CargoConfig, CargoSystem, ScheduleKind};
use cargo_graph::generators::chung_lu;
use cargo_graph::Graph;
use std::time::Instant;

/// The number of triples a Count run evaluated, recovered from its
/// modeled online ledger: every triple is one `[e|f|g]` exchange
/// (6 elements counting both directions) and the pipeline's only other
/// online exchange is the final noisy opening (2 elements).
fn evaluated_triples(elements: u64) -> u64 {
    elements.saturating_sub(2) / 6
}

/// `C(n, 3)` — the dense cube's triple count.
fn dense_cube(n: u64) -> u128 {
    (n as u128) * (n as u128 - 1) * (n as u128 - 2) / 6
}

/// A power-law test graph in the shape the paper's datasets share:
/// heavy-tailed Chung–Lu with ~4 edges per node and a `√n`-scale hub.
/// Public because the large-graph secure-count sweep
/// (`bench_secure_count --powerlaw`) scales the same shape to
/// million-node sizes.
pub fn power_law(n: usize, seed: u64) -> Graph {
    let d_max = ((n as f64).sqrt() * 2.0) as usize;
    chung_lu(n, 4 * n, d_max.max(8), 2.5, seed)
}

/// Runs the `sparse` experiment (see module docs).
pub fn sparse_large(opts: &Options) -> Vec<Table> {
    let mut t = Table::new(
        "Sparse Count schedule: power-law graphs beyond the dense cube",
        &[
            "schedule",
            "n",
            "edges",
            "triples evaluated",
            "C(n,3)",
            "reduction",
            "count s",
            "online MB",
            "T'",
        ],
    );
    let mut row = |schedule: ScheduleKind, g: &Graph, seed: u64| {
        let cfg = CargoConfig::new(2.0)
            .with_seed(seed)
            .with_threads(opts.threads)
            .with_batch(opts.batch)
            .with_schedule(schedule);
        let start = Instant::now();
        let out = CargoSystem::new(cfg).run(g);
        let _ = start;
        let triples = evaluated_triples(out.net.elements);
        let cube = dense_cube(g.n() as u64);
        t.row(vec![
            schedule.to_string(),
            g.n().to_string(),
            g.edge_count().to_string(),
            triples.to_string(),
            cube.to_string(),
            format!("{:.0}x", cube as f64 / (triples.max(1) as f64)),
            format!("{:.3}", out.timings.count.as_secs_f64()),
            format!("{:.2}", out.net.bytes as f64 / 1e6),
            format!("{:.1}", out.noisy_count),
        ]);
        out
    };
    // Cross-check size: both schedules run, and must open the same
    // noisy count from the same seed.
    let small_n = 400.min(opts.n.max(3));
    let small = power_law(small_n, opts.seed);
    let seed = trial_seed(opts.seed, 0, 2.0, small_n);
    let dense = row(ScheduleKind::Dense, &small, seed);
    let sparse = row(ScheduleKind::Sparse, &small, seed);
    let stream = row(ScheduleKind::SparseStream, &small, seed);
    assert_eq!(
        dense.noisy_count, sparse.noisy_count,
        "dense and sparse schedules must release the identical noisy count"
    );
    assert_eq!(
        sparse.noisy_count, stream.noisy_count,
        "eager and streamed sparse schedules must release the identical noisy count"
    );
    // Target size: sparse only — the dense cube cannot attempt it.
    if opts.n > small_n {
        let big = power_law(opts.n, opts.seed);
        row(ScheduleKind::Sparse, &big, trial_seed(opts.seed, 0, 2.0, opts.n));
    }
    t.footnote(
        "eps = 2; the cross-check rows pin dense T' == sparse T' bit for bit; \
         the target row is sparse-only (the dense cube at that n is not \
         attemptable). triples evaluated = (online elements - 2) / 6.",
    );
    let _ = t.write_csv(&opts.out_dir, "sparse_schedule");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_experiment_cross_checks_and_reports_reduction() {
        let opts = Options {
            n: 600,
            trials: 1,
            out_dir: std::env::temp_dir().join("cargo_bench_sparse_test"),
            ..Options::default()
        };
        let tables = sparse_large(&opts);
        assert_eq!(tables.len(), 1);
        // dense + sparse + sparse-stream cross-check rows, plus the
        // sparse target row.
        assert_eq!(tables[0].len(), 4);
    }

    #[test]
    fn dense_cube_formula() {
        assert_eq!(dense_cube(4), 4);
        assert_eq!(dense_cube(20_000), 1_333_133_340_000);
    }
}
