//! Extension experiments beyond the paper's figures.
//!
//! * [`ext_sensitivity`] — empirically reproduces the Section IV-B
//!   *discussion*: `d'_max`-scaled Laplace (CARGO's choice, finite
//!   variance) vs the smooth-sensitivity Cauchy mechanism (constant
//!   noise on easy instances, infinite variance). Reported as median
//!   absolute error (the Cauchy mean does not exist) plus the l2 loss
//!   (which showcases the infinite-variance pathology).
//! * [`ext_node_dp`] — the Section III-B extension: CARGO under Node
//!   DDP vs Edge DDP, quantifying the sensitivity blow-up
//!   (`d'_max` → `C(d'_max, 2)`) the paper leaves as future work to
//!   tame.

use crate::cli::Options;
use crate::datasets::ExperimentGraph;
use crate::output::{sci, Table};
use crate::runners::trial_seed;
use cargo_core::{
    node_dp::run_node_dp, smooth_sensitivity, smooth_sensitivity_mechanism, CargoConfig,
    CargoSystem,
};
use cargo_graph::generators::presets::SnapDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if xs.is_empty() {
        return 0.0;
    }
    xs[xs.len() / 2]
}

/// Global-sensitivity Laplace (CARGO) vs smooth-sensitivity Cauchy.
pub fn ext_sensitivity(opts: &Options) -> Vec<Table> {
    let eps = 2.0;
    let mut t = Table::new(
        "Extension: d'_max Laplace (CARGO) vs smooth-sensitivity Cauchy (eps = 2)",
        &[
            "Graph",
            "S_beta",
            "d_max",
            "CARGO median |err|",
            "SS median |err|",
            "CARGO l2",
            "SS l2",
        ],
    );
    let trials = (opts.trials * 4).max(8);
    for ds in SnapDataset::TABLE4 {
        let eg = ExperimentGraph::load(ds, opts);
        let g = eg.prefix(opts.n.min(800)); // LS computation is O(wedges)
        let t_true = cargo_graph::count_triangles(&g) as f64;
        let mut cargo_err = Vec::with_capacity(trials);
        let mut ss_err = Vec::with_capacity(trials);
        for trial in 0..trials {
            let out = CargoSystem::new(
                CargoConfig::new(eps)
                .with_seed(trial_seed(opts.seed, trial, eps, g.n()))
                .with_offline(opts.offline)
                .with_kernel(opts.kernel)
                .with_factory_threads(opts.factory_threads)
                .with_pool_depth(opts.pool_depth)
                .with_pool_backpressure(opts.pool_backpressure),
            )
            .run(&g);
            cargo_err.push((out.noisy_count - t_true).abs());
            let mut rng =
                StdRng::seed_from_u64(trial_seed(opts.seed ^ 0x55, trial, eps, g.n()));
            let (ss_out, _) = smooth_sensitivity_mechanism(&g, eps, &mut rng);
            ss_err.push((ss_out - t_true).abs());
        }
        let l2 = |v: &[f64]| v.iter().map(|e| e * e).sum::<f64>() / v.len() as f64;
        t.row(vec![
            format!("{} (n={})", ds.display_name(), g.n()),
            format!("{:.1}", smooth_sensitivity(&g, eps / 6.0)),
            g.max_degree().to_string(),
            sci(median(cargo_err.clone())),
            sci(median(ss_err.clone())),
            sci(l2(&cargo_err)),
            sci(l2(&ss_err)),
        ]);
    }
    t.footnote(
        "Median |err| is the fair comparison (Cauchy has no mean); the l2 column shows the heavy-tail pathology the paper's discussion predicts.",
    );
    let _ = t.write_csv(&opts.out_dir, "ext_sensitivity");
    vec![t]
}

/// Edge DDP vs the Node-DDP extension.
pub fn ext_node_dp(opts: &Options) -> Vec<Table> {
    let eps = 2.0;
    let mut t = Table::new(
        "Extension: Edge DDP vs Node DDP (eps = 2)",
        &[
            "Graph",
            "Edge rel. err",
            "Node rel. err",
            "Node/Edge l2 ratio",
        ],
    );
    let trials = opts.trials.max(3);
    for ds in [SnapDataset::Facebook, SnapDataset::Wiki] {
        let eg = ExperimentGraph::load(ds, opts);
        let g = eg.prefix(opts.n.min(1000));
        let t_true = cargo_graph::count_triangles(&g) as f64;
        let mut edge_l2 = 0.0;
        let mut node_l2 = 0.0;
        let mut edge_rel = 0.0;
        let mut node_rel = 0.0;
        for trial in 0..trials {
            let cfg = CargoConfig::new(eps)
                .with_seed(trial_seed(opts.seed, trial, eps, g.n()))
                .with_offline(opts.offline)
                .with_kernel(opts.kernel)
                .with_factory_threads(opts.factory_threads)
                .with_pool_depth(opts.pool_depth)
                .with_pool_backpressure(opts.pool_backpressure);
            let e = CargoSystem::new(cfg).run(&g);
            let n_out = run_node_dp(&cfg, &g);
            edge_l2 += (e.noisy_count - t_true).powi(2);
            node_l2 += (n_out.noisy_count - t_true).powi(2);
            edge_rel += (e.noisy_count - t_true).abs() / t_true;
            node_rel += (n_out.noisy_count - t_true).abs() / t_true;
        }
        let k = trials as f64;
        t.row(vec![
            format!("{} (n={})", ds.display_name(), g.n()),
            sci(edge_rel / k),
            sci(node_rel / k),
            sci((node_l2 / k) / (edge_l2 / k).max(1e-12)),
        ]);
    }
    t.footnote("Node DDP pays the C(d'_max,2) sensitivity of Section III-B; reducing it is the paper's stated future work.");
    let _ = t.write_csv(&opts.out_dir, "ext_node_dp");
    vec![t]
}


/// Validates Observation 1 (triangle homogeneity, Durak et al. \[24\]):
/// edges that close triangles connect nodes of more similar degree
/// than the average edge. This is the empirical premise behind
/// Algorithm 3's similarity heuristic.
pub fn ext_homogeneity(opts: &Options) -> Vec<Table> {
    let mut t = Table::new(
        "Extension: Observation 1 — triangle homogeneity per dataset",
        &[
            "Graph",
            "mean DS (triangle edges)",
            "mean DS (all edges)",
            "homogeneity ratio",
        ],
    );
    for ds in SnapDataset::TABLE4 {
        let eg = ExperimentGraph::load(ds, opts);
        let g = eg.prefix(opts.n.min(4000));
        match cargo_graph::degree::triangle_homogeneity(&g) {
            Some((tri, all)) => {
                t.row(vec![
                    format!("{} (n={})", ds.display_name(), g.n()),
                    format!("{tri:.4}"),
                    format!("{all:.4}"),
                    format!("{:.3}", tri / all.max(1e-12)),
                ]);
            }
            None => t.row(vec![
                ds.display_name().into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t.footnote(
        "DS(d_u, d_v) = |d_u - d_v| / d_u (Definition 5); ratio < 1 confirms triangle edges are more degree-homogeneous, justifying similarity-based projection.",
    );
    let _ = t.write_csv(&opts.out_dir, "ext_homogeneity");
    vec![t]
}

/// Ablation: CARGO with vs without projection. Without projection the
/// perturbation sensitivity is n (no triangles are lost, but the noise
/// explodes) — quantifying why Step 1 exists.
pub fn ext_projection_ablation(opts: &Options) -> Vec<Table> {
    let eps = 2.0;
    let mut t = Table::new(
        "Extension: projection ablation (eps = 2)",
        &[
            "Graph",
            "with projection: rel err",
            "without: rel err",
            "l2 ratio (without/with)",
        ],
    );
    let trials = opts.trials.max(3);
    for ds in [SnapDataset::Facebook, SnapDataset::HepPh] {
        let eg = ExperimentGraph::load(ds, opts);
        let g = eg.prefix(opts.n.min(1000));
        let t_true = cargo_graph::count_triangles(&g) as f64;
        let mut with = (0.0f64, 0.0f64); // (sum rel, sum l2)
        let mut without = (0.0f64, 0.0f64);
        for trial in 0..trials {
            let cfg = CargoConfig::new(eps)
                .with_seed(trial_seed(opts.seed, trial, eps, g.n()))
                .with_offline(opts.offline)
                .with_kernel(opts.kernel)
                .with_factory_threads(opts.factory_threads)
                .with_pool_depth(opts.pool_depth)
                .with_pool_backpressure(opts.pool_backpressure);
            let a = CargoSystem::new(cfg).run(&g);
            let b = CargoSystem::new(cfg.without_projection()).run(&g);
            with.0 += (a.noisy_count - t_true).abs() / t_true;
            with.1 += (a.noisy_count - t_true).powi(2);
            without.0 += (b.noisy_count - t_true).abs() / t_true;
            without.1 += (b.noisy_count - t_true).powi(2);
        }
        let k = trials as f64;
        t.row(vec![
            format!("{} (n={})", ds.display_name(), g.n()),
            sci(with.0 / k),
            sci(without.0 / k),
            sci((without.1 / k) / (with.1 / k).max(1e-12)),
        ]);
    }
    t.footnote("Without Step 1 the count is exact pre-noise but the sensitivity is n instead of d'_max.");
    let _ = t.write_csv(&opts.out_dir, "ext_projection_ablation");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Options {
        Options {
            n: 120,
            trials: 1,
            out_dir: std::env::temp_dir().join("cargo_bench_ext_test"),
            ..Options::default()
        }
    }

    #[test]
    fn ext_sensitivity_covers_datasets() {
        let t = &ext_sensitivity(&tiny_opts())[0];
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn ext_node_dp_covers_two_graphs() {
        let t = &ext_node_dp(&tiny_opts())[0];
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ext_homogeneity_covers_datasets() {
        let t = &ext_homogeneity(&tiny_opts())[0];
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn ext_ablation_shows_projection_benefit() {
        let t = &ext_projection_ablation(&tiny_opts())[0];
        assert_eq!(t.len(), 2);
    }
}
