//! Figures 5–8: the utility–privacy trade-off.
//!
//! * Figs. 5/6 — l2 loss / relative error vs ε on all four graphs at
//!   the default n.
//! * Figs. 7/8 — the same metrics vs n at ε = 2 on Facebook and Wiki.
//!
//! Each table is one paper subplot: rows are x-axis points, columns the
//! three protocols. A single sweep produces *both* metrics (the l2 and
//! relative-error figures come from the same runs, as in the paper),
//! so `fig5`/`fig6` (and `fig7`/`fig8`) share one computation.
//!
//! The cheap baselines (CentralLap, Local2Rounds) run 6× more trials
//! than CARGO: the l2 of a Laplace mechanism has ~100% relative
//! standard error at 5 trials, and the extra baseline trials cost
//! nothing next to CARGO's O(n³) count.

use crate::cli::Options;
use crate::datasets::{ExperimentGraph, EPSILON_SWEEP, N_SWEEP};
use crate::output::{sci, Table};
use crate::runners::{run_cargo_with, run_central, run_local2rounds, UtilityPoint};
use cargo_graph::generators::presets::SnapDataset;

/// Which of the paper's two metrics a figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Squared error (Figs. 5, 7, 9).
    L2,
    /// Relative error (Figs. 6, 8, 10).
    Rel,
}

impl Metric {
    /// Extracts the metric from an aggregated point.
    pub fn of(&self, p: &UtilityPoint) -> f64 {
        match self {
            Metric::L2 => p.l2,
            Metric::Rel => p.rel,
        }
    }

    /// Axis label.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::L2 => "l2 loss",
            Metric::Rel => "relative error",
        }
    }
}

/// One swept data point for all three protocols.
struct SweepPoint {
    x: String,
    local: UtilityPoint,
    cargo: UtilityPoint,
    central: UtilityPoint,
}

/// Renders one metric's table from a sweep.
fn render(
    fig: &str,
    metric: Metric,
    subtitle: &str,
    xlabel: &str,
    points: &[SweepPoint],
    footnote: &str,
) -> Table {
    let mut t = Table::new(
        &format!("{fig}: {} of triangle counting {subtitle}", metric.label()),
        &[xlabel, "Local2Rounds", "CARGO", "CentralLap"],
    );
    for p in points {
        t.row(vec![
            p.x.clone(),
            sci(metric.of(&p.local)),
            sci(metric.of(&p.cargo)),
            sci(metric.of(&p.central)),
        ]);
    }
    t.footnote(footnote);
    t
}

/// Figs. 5 and 6 from one sweep of ε over the four Table IV graphs.
pub fn fig5_and_6(opts: &Options) -> Vec<Table> {
    let cheap_trials = opts.trials * 6;
    let mut tables = Vec::new();
    for ds in SnapDataset::TABLE4 {
        let eg = ExperimentGraph::load(ds, opts);
        let sub = eg.prefix(opts.n);
        let points: Vec<SweepPoint> = EPSILON_SWEEP
            .iter()
            .map(|&eps| SweepPoint {
                x: format!("{eps}"),
                local: run_local2rounds(&sub, eps, cheap_trials, opts.seed),
                cargo: run_cargo_with(&sub, eps, opts.trials, opts.seed, opts.threads, opts.batch, opts.offline, opts.kernel, opts.transport, opts.pool_policy(), opts.schedule, opts.recv_timeout),
                central: run_central(&sub, eps, cheap_trials, opts.seed),
            })
            .collect();
        let footnote = format!(
            "T = {} triangles on this subsample; {} CARGO trials, {} baseline trials; data: {}.",
            cargo_graph::count_triangles(&sub),
            opts.trials,
            cheap_trials,
            eg.origin_label()
        );
        for (fig, metric) in [("Fig. 5", Metric::L2), ("Fig. 6", Metric::Rel)] {
            let t = render(
                fig,
                metric,
                &format!("vs eps ({}, n={})", ds.display_name(), sub.n()),
                "eps",
                &points,
                &footnote,
            );
            let name = format!(
                "{}_{}",
                if metric == Metric::L2 { "fig5" } else { "fig6" },
                ds.name()
            );
            let _ = t.write_csv(&opts.out_dir, &name);
            tables.push(t);
        }
    }
    tables
}

/// Figs. 7 and 8 from one sweep of n at ε = 2 on Facebook and Wiki.
pub fn fig7_and_8(opts: &Options) -> Vec<Table> {
    let eps = 2.0;
    let cheap_trials = opts.trials * 6;
    let mut tables = Vec::new();
    for ds in [SnapDataset::Facebook, SnapDataset::Wiki] {
        let eg = ExperimentGraph::load(ds, opts);
        let sweep: Vec<usize> = if opts.quick {
            N_SWEEP.iter().copied().filter(|&n| n <= 1000).collect()
        } else {
            N_SWEEP.to_vec()
        };
        let points: Vec<SweepPoint> = sweep
            .iter()
            .map(|&n| {
                let sub = eg.prefix(n);
                SweepPoint {
                    x: n.to_string(),
                    local: run_local2rounds(&sub, eps, cheap_trials, opts.seed),
                    cargo: run_cargo_with(&sub, eps, opts.trials, opts.seed, opts.threads, opts.batch, opts.offline, opts.kernel, opts.transport, opts.pool_policy(), opts.schedule, opts.recv_timeout),
                    central: run_central(&sub, eps, cheap_trials, opts.seed),
                }
            })
            .collect();
        let footnote = format!(
            "eps = 2; {} CARGO trials, {} baseline trials; data: {}.",
            opts.trials,
            cheap_trials,
            eg.origin_label()
        );
        for (fig, metric) in [("Fig. 7", Metric::L2), ("Fig. 8", Metric::Rel)] {
            let t = render(
                fig,
                metric,
                &format!("vs n ({}, eps=2)", ds.display_name()),
                "n",
                &points,
                &footnote,
            );
            let name = format!(
                "{}_{}",
                if metric == Metric::L2 { "fig7" } else { "fig8" },
                ds.name()
            );
            let _ = t.write_csv(&opts.out_dir, &name);
            tables.push(t);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Options {
        Options {
            n: 120,
            trials: 1,
            quick: true,
            out_dir: std::env::temp_dir().join("cargo_bench_utility_test"),
            ..Options::default()
        }
    }

    #[test]
    fn metric_extraction() {
        let p = UtilityPoint {
            l2: 4.0,
            rel: 0.5,
            time: std::time::Duration::ZERO,
            count_time: std::time::Duration::ZERO,
            net: cargo_mpc::NetStats::new(),
        };
        assert_eq!(Metric::L2.of(&p), 4.0);
        assert_eq!(Metric::Rel.of(&p), 0.5);
        assert_eq!(Metric::L2.label(), "l2 loss");
    }

    #[test]
    fn fig5_and_6_produce_eight_tables_with_six_rows() {
        let tables = fig5_and_6(&tiny_opts());
        assert_eq!(tables.len(), 8); // 4 datasets × 2 metrics
        for t in &tables {
            assert_eq!(t.len(), EPSILON_SWEEP.len());
        }
    }

    #[test]
    fn fig7_and_8_quick_mode_limits_sweep() {
        let tables = fig7_and_8(&tiny_opts());
        assert_eq!(tables.len(), 4); // 2 datasets × 2 metrics
        for t in &tables {
            assert_eq!(t.len(), 2, "quick mode keeps n <= 1000");
        }
    }
}
