//! Tables II–V of the paper.

use crate::cli::Options;
use crate::datasets::{ExperimentGraph, EPSILON_SWEEP};
use crate::output::{sci, Table};
use cargo_core::{estimate_max_degree, theory};
use cargo_graph::generators::presets::SnapDataset;
use cargo_graph::DegreeStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Table II — theoretical comparison, instantiated at the default
/// experiment point (n = opts.n, ε = 2, Facebook-like d_max).
pub fn table2(opts: &Options) -> Vec<Table> {
    let mut t = Table::new(
        "Table II: summary of theoretical results",
        &["", "CentralLap", "CARGO", "Local2Rounds"],
    );
    t.row(vec![
        "Server".into(),
        "Trusted".into(),
        "Untrusted".into(),
        "Untrusted".into(),
    ]);
    t.row(vec![
        "Privacy".into(),
        "eps-Edge CDP".into(),
        "(eps1+eps2)-Edge DDP".into(),
        "eps-Edge LDP".into(),
    ]);
    t.row(vec![
        "Utility".into(),
        "O(dmax^2/eps^2)".into(),
        "O(dmax'^2/eps2^2)".into(),
        "O(e^eps/(e^eps-1)^2 (dmax^3 n + e^eps/eps^2 dmax^2 n))".into(),
    ]);
    t.row(vec![
        "Time".into(),
        theory::time_complexity("CentralLap").into(),
        theory::time_complexity("CARGO").into(),
        theory::time_complexity("Local2Rounds").into(),
    ]);
    // Numeric instantiation so the bound magnitudes are visible.
    let eg = ExperimentGraph::load(SnapDataset::Facebook, opts);
    let sub = eg.prefix(opts.n);
    let d_max = sub.max_degree() as f64;
    let (central, cargo, local) =
        theory::table2_comparison(d_max, d_max, sub.n() as f64, 2.0);
    t.row(vec![
        format!("Expected l2 @ eps=2, n={}, dmax={}", sub.n(), d_max),
        sci(central),
        sci(cargo),
        sci(local),
    ]);
    t.footnote(
        "Utility rows are expected-l2 bounds; the numeric row instantiates them on the Facebook subsample.",
    );
    let _ = t.write_csv(&opts.out_dir, "table2");
    vec![t]
}

/// SS/RS constants for Table III as cited by the paper from Dong & Yi
/// (Table 1 of \[47\]), at ε = 1.
const TABLE3_SS_RS: [(SnapDataset, f64, f64); 5] = [
    (SnapDataset::CondMat, 489.0, 493.0),
    (SnapDataset::AstroPh, 1050.0, 1054.0),
    (SnapDataset::HepPh, 1350.0, 1354.0),
    (SnapDataset::HepTh, 102.0, 205.0),
    (SnapDataset::GrQc, 183.0, 222.0),
];

/// Table III — our measured `d'_max` vs the cited smooth/residual
/// sensitivities at ε = 1 (ε₁ = 0.1·1 is NOT used here: the paper's
/// Table III runs `Max` with the full ε = 1, matching \[47\]'s setting).
pub fn table3(opts: &Options) -> Vec<Table> {
    let mut t = Table::new(
        "Table III: comparison between SS, RS, and d'_max (eps = 1)",
        &["Graph", "d'_max (measured)", "SS (cited)", "RS (cited)"],
    );
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x7AB1E3);
    for (ds, ss, rs) in TABLE3_SS_RS {
        let eg = ExperimentGraph::load(ds, opts);
        let est = estimate_max_degree(&eg.full.degrees(), 1.0, &mut rng);
        t.row(vec![
            ds.display_name().into(),
            format!("{:.0}", est.d_max_noisy),
            format!("{ss:.0}"),
            format!("{rs:.0}"),
        ]);
    }
    t.footnote(
        "SS/RS columns are the constants the paper cites from Dong & Yi [47]; d'_max is measured on this repo's graphs (DESIGN.md section 4).",
    );
    let _ = t.write_csv(&opts.out_dir, "table3");
    vec![t]
}

/// Table IV — dataset statistics: published values next to the measured
/// statistics of the graphs actually used.
pub fn table4(opts: &Options) -> Vec<Table> {
    let mut t = Table::new(
        "Table IV: details of graph datasets",
        &[
            "Graph",
            "|V| (paper)",
            "|E| (paper)",
            "dmax (paper)",
            "|V| (ours)",
            "|E| (ours)",
            "dmax (ours)",
            "Domain",
            "Origin",
        ],
    );
    for ds in SnapDataset::TABLE4 {
        let eg = ExperimentGraph::load(ds, opts);
        let stats = DegreeStats::of(&eg.full);
        let want = ds.stats();
        t.row(vec![
            ds.display_name().into(),
            want.n.to_string(),
            want.edges.to_string(),
            want.d_max.to_string(),
            stats.n.to_string(),
            stats.edges.to_string(),
            stats.max.to_string(),
            want.domain.into(),
            eg.origin_label().into(),
        ]);
    }
    let _ = t.write_csv(&opts.out_dir, "table4");
    vec![t]
}

/// Table V — noisy maximum degrees under various ε (ε₁ = 0.1ε as in
/// the pipeline), averaged over trials.
pub fn table5(opts: &Options) -> Vec<Table> {
    let mut headers: Vec<String> = vec!["Graph".into()];
    headers.extend(EPSILON_SWEEP.iter().map(|e| format!("eps={e}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Table V: noisy maximum degrees under various eps", &header_refs);
    for ds in SnapDataset::TABLE4 {
        let eg = ExperimentGraph::load(ds, opts);
        let degrees = eg.full.degrees();
        let mut cells = vec![format!(
            "{} (dmax={})",
            ds.display_name(),
            eg.full.max_degree()
        )];
        for (ei, &eps) in EPSILON_SWEEP.iter().enumerate() {
            let eps1 = 0.1 * eps;
            let mut acc = 0.0;
            for trial in 0..opts.trials.max(1) {
                let mut rng = StdRng::seed_from_u64(
                    opts.seed ^ ((ei as u64) << 32) ^ (trial as u64).wrapping_mul(0xBEE5),
                );
                acc += estimate_max_degree(&degrees, eps1, &mut rng).d_max_noisy;
            }
            cells.push(format!("{:.0}", acc / opts.trials.max(1) as f64));
        }
        t.row(cells);
    }
    t.footnote("Each cell averages d'_max over trials; eps1 = 0.1*eps as in Section V-A.");
    let _ = t.write_csv(&opts.out_dir, "table5");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Options {
        Options {
            n: 200,
            trials: 1,
            out_dir: std::env::temp_dir().join("cargo_bench_tables_test"),
            ..Options::default()
        }
    }

    #[test]
    fn table2_has_five_rows() {
        let t = &table2(&tiny_opts())[0];
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn table3_covers_five_graphs() {
        let t = &table3(&tiny_opts())[0];
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn table4_covers_four_datasets() {
        let t = &table4(&tiny_opts())[0];
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn table5_has_one_row_per_dataset() {
        let t = &table5(&tiny_opts())[0];
        assert_eq!(t.len(), 4);
    }
}
