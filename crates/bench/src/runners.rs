//! Trial runners: execute each protocol repeatedly and aggregate the
//! paper's utility metrics.

use cargo_baselines::{
    central_lap_triangles, local2rounds_triangles, Local2RoundsConfig,
};
use cargo_core::{
    l2_loss, relative_error, CargoConfig, CargoSystem, CountKernel, OfflineMode, ScheduleKind,
    TransportKind,
};
use cargo_graph::Graph;
use cargo_mpc::{NetStats, PoolPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Derives a well-separated per-trial seed. The naive `seed ^ trial`
/// scheme is NOT enough: `StdRng` streams for nearby seeds consume the
/// same uniform draws at the same positions, so every (dataset, ε)
/// cell of a figure would reuse one rescaled noise realisation. A full
/// SplitMix64 avalanche over (seed, trial, ε bits, n) decorrelates
/// every cell.
pub fn trial_seed(seed: u64, trial: usize, epsilon: f64, fingerprint: usize) -> u64 {
    let mut z = seed
        ^ (trial as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ epsilon.to_bits().rotate_left(17)
        ^ (fingerprint as u64).wrapping_mul(0xA24BAED4963EE407);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A graph fingerprint for seed derivation: distinguishes datasets
/// that share the same n (the sweep keeps n fixed across datasets).
fn fingerprint(g: &Graph) -> usize {
    g.n().wrapping_mul(1_000_003).wrapping_add(g.edge_count())
}

/// Aggregated utility of one protocol at one parameter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityPoint {
    /// Mean l2 loss over trials.
    pub l2: f64,
    /// Mean relative error over trials.
    pub rel: f64,
    /// Mean wall-clock time per trial.
    pub time: Duration,
    /// Mean wall-clock time of the `Count` step only (CARGO; zero for
    /// baselines).
    pub count_time: Duration,
    /// Server↔server traffic of the last trial (CARGO only; identical
    /// across trials up to the noisy projection's trims). Carries the
    /// offline ledger when the run used `OfflineMode::OtExtension`.
    pub net: NetStats,
}

fn aggregate(
    t_true: f64,
    estimates: &[f64],
    times: &[Duration],
    count_times: &[Duration],
    net: NetStats,
) -> UtilityPoint {
    let n = estimates.len().max(1) as u32;
    UtilityPoint {
        net,
        l2: estimates.iter().map(|&e| l2_loss(t_true, e)).sum::<f64>() / n as f64,
        rel: estimates
            .iter()
            .map(|&e| relative_error(t_true, e))
            .sum::<f64>()
            / n as f64,
        time: times.iter().sum::<Duration>() / n,
        count_time: count_times.iter().sum::<Duration>() / n,
    }
}

/// Runs CARGO `trials` times and aggregates (secure count on the
/// config's default thread/batch/kernel knobs).
pub fn run_cargo(g: &Graph, epsilon: f64, trials: usize, seed: u64) -> UtilityPoint {
    run_cargo_with(
        g,
        epsilon,
        trials,
        seed,
        0,
        0,
        OfflineMode::TrustedDealer,
        CountKernel::default(),
        TransportKind::Memory,
        PoolPolicy::INLINE,
        ScheduleKind::Dense,
        cargo_mpc::DEFAULT_RECV_TIMEOUT,
    )
}

/// [`run_cargo`] with explicit Count knobs: `threads` workers
/// (0 = all cores), `batch` triples per round (0 = default), the
/// offline-phase mode, the Count kernel, the Count wire, the
/// triple-factory policy, and the Count schedule — the CLI's
/// `--threads`/`--batch`/`--offline-mode`/`--kernel`/`--transport`/
/// `--factory-threads`/`--pool-depth`/`--pool-backpressure`/
/// `--schedule`/`--recv-timeout` land here so the knobs govern every
/// Count entry the experiments exercise.
#[allow(clippy::too_many_arguments)]
pub fn run_cargo_with(
    g: &Graph,
    epsilon: f64,
    trials: usize,
    seed: u64,
    threads: usize,
    batch: usize,
    offline: OfflineMode,
    kernel: CountKernel,
    transport: TransportKind,
    pool: PoolPolicy,
    schedule: ScheduleKind,
    recv_timeout: Duration,
) -> UtilityPoint {
    let t_true = cargo_graph::count_triangles(g) as f64;
    let mut estimates = Vec::with_capacity(trials);
    let mut times = Vec::with_capacity(trials);
    let mut count_times = Vec::with_capacity(trials);
    let mut net = NetStats::new();
    for t in 0..trials {
        let cfg = CargoConfig::new(epsilon)
            .with_seed(trial_seed(seed, t, epsilon, fingerprint(g)))
            .with_threads(threads)
            .with_batch(batch)
            .with_offline(offline)
            .with_kernel(kernel)
            .with_transport(transport)
            .with_factory_threads(pool.factory_threads)
            .with_pool_depth(pool.depth)
            .with_pool_backpressure(pool.backpressure)
            .with_schedule(schedule)
            .with_recv_timeout(recv_timeout);
        let start = Instant::now();
        let out = CargoSystem::new(cfg).run(g);
        times.push(start.elapsed());
        count_times.push(out.timings.count);
        estimates.push(out.noisy_count);
        net = out.net;
    }
    aggregate(t_true, &estimates, &times, &count_times, net)
}

/// Runs CentralLap△ `trials` times and aggregates.
pub fn run_central(g: &Graph, epsilon: f64, trials: usize, seed: u64) -> UtilityPoint {
    let t_true = cargo_graph::count_triangles(g) as f64;
    let mut estimates = Vec::with_capacity(trials);
    let mut times = Vec::with_capacity(trials);
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(trial_seed(seed ^ 0xA5A5, t, epsilon, fingerprint(g)));
        let start = Instant::now();
        let out = central_lap_triangles(g, epsilon, &mut rng);
        times.push(start.elapsed());
        estimates.push(out.noisy_count);
    }
    aggregate(t_true, &estimates, &times, &[Duration::ZERO], NetStats::new())
}

/// Runs Local2Rounds△ `trials` times and aggregates.
pub fn run_local2rounds(g: &Graph, epsilon: f64, trials: usize, seed: u64) -> UtilityPoint {
    let t_true = cargo_graph::count_triangles(g) as f64;
    let mut estimates = Vec::with_capacity(trials);
    let mut times = Vec::with_capacity(trials);
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(trial_seed(seed ^ 0x5A5A, t, epsilon, fingerprint(g)));
        let start = Instant::now();
        let out = local2rounds_triangles(g, Local2RoundsConfig::paper_split(epsilon), &mut rng);
        times.push(start.elapsed());
        estimates.push(out.noisy_count);
    }
    aggregate(t_true, &estimates, &times, &[Duration::ZERO], NetStats::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cargo_graph::generators::barabasi_albert;

    #[test]
    fn runners_produce_finite_metrics() {
        let g = barabasi_albert(100, 4, 1);
        // OT preprocessing costs ~512 COTs per triple, so its smoke
        // point uses a small graph (equivalence to dealer mode is
        // pinned exhaustively in crates/core).
        let small = barabasi_albert(30, 3, 1);
        for point in [
            run_cargo(&g, 2.0, 2, 1),
            run_cargo_with(&g, 2.0, 2, 1, 2, 16, OfflineMode::TrustedDealer, CountKernel::Bitsliced, TransportKind::Memory, PoolPolicy::INLINE, ScheduleKind::Dense, cargo_mpc::DEFAULT_RECV_TIMEOUT),
            run_cargo_with(&small, 2.0, 1, 1, 1, 0, OfflineMode::OtExtension, CountKernel::Scalar, TransportKind::Memory, PoolPolicy::INLINE, ScheduleKind::Dense, cargo_mpc::DEFAULT_RECV_TIMEOUT),
            run_cargo_with(&small, 2.0, 1, 1, 1, 0, OfflineMode::TrustedDealer, CountKernel::default(), TransportKind::Tcp, PoolPolicy::INLINE, ScheduleKind::Dense, cargo_mpc::DEFAULT_RECV_TIMEOUT),
            run_cargo_with(&g, 2.0, 2, 1, 2, 16, OfflineMode::TrustedDealer, CountKernel::Bitsliced, TransportKind::Memory, PoolPolicy::INLINE, ScheduleKind::Sparse, cargo_mpc::DEFAULT_RECV_TIMEOUT),
            run_central(&g, 2.0, 2, 1),
            run_local2rounds(&g, 2.0, 2, 1),
        ] {
            assert!(point.l2.is_finite() && point.l2 >= 0.0);
            assert!(point.rel.is_finite() && point.rel >= 0.0);
        }
    }

    #[test]
    fn ot_mode_surfaces_an_offline_ledger_through_the_runner() {
        let g = barabasi_albert(30, 3, 2);
        let dealer = run_cargo_with(&g, 2.0, 1, 1, 1, 0, OfflineMode::TrustedDealer, CountKernel::default(), TransportKind::Memory, PoolPolicy::INLINE, ScheduleKind::Dense, cargo_mpc::DEFAULT_RECV_TIMEOUT);
        let ot = run_cargo_with(&g, 2.0, 1, 1, 1, 0, OfflineMode::OtExtension, CountKernel::default(), TransportKind::Memory, PoolPolicy::INLINE, ScheduleKind::Dense, cargo_mpc::DEFAULT_RECV_TIMEOUT);
        assert!(dealer.net.offline.is_empty());
        assert!(ot.net.offline.bytes > 0);
        assert_eq!(ot.net.online(), dealer.net.online());
    }

    #[test]
    fn utility_ordering_matches_paper_at_default_epsilon() {
        // central ≤ cargo ≪ local — the headline of Figs. 5/6.
        let g = barabasi_albert(300, 6, 2);
        let trials = 8;
        let central = run_central(&g, 2.0, trials, 3);
        let cargo = run_cargo(&g, 2.0, trials, 3);
        let local = run_local2rounds(&g, 2.0, trials, 3);
        assert!(
            local.l2 > cargo.l2,
            "local {} should exceed cargo {}",
            local.l2,
            cargo.l2
        );
        assert!(
            cargo.l2 < 100.0 * central.l2.max(1.0),
            "cargo {} should be within ~constant of central {}",
            cargo.l2,
            central.l2
        );
    }
}
