//! Hand-rolled flag parsing for the `experiments` binary (no external
//! CLI dependency in the approved set).

use cargo_core::{CountKernel, ScheduleKind, TransportKind};
use cargo_mpc::{Backpressure, OfflineMode, PoolPolicy, DEFAULT_POOL_DEPTH, DEFAULT_RECV_TIMEOUT};
use std::path::PathBuf;
use std::time::Duration;

/// Parsed command-line options with the paper's defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Default number of users (the paper's default is 2000).
    pub n: usize,
    /// Trials to average per data point.
    pub trials: usize,
    /// Root seed.
    pub seed: u64,
    /// Directory for CSV outputs.
    pub out_dir: PathBuf,
    /// Optional directory with real SNAP edge lists.
    pub data_dir: Option<PathBuf>,
    /// Secure-count worker threads (0 = all cores).
    pub threads: usize,
    /// Secure-count batch size (0 = default).
    pub batch: usize,
    /// Offline-phase implementation for the secure count
    /// (`--offline-mode dealer|ot`).
    pub offline: OfflineMode,
    /// Count kernel (`--kernel scalar|bitsliced`).
    pub kernel: CountKernel,
    /// Count wire (`--transport memory|tcp`): in-process memory
    /// (default) or the message-passing runtime over real loopback
    /// sockets. Results are bit-identical; TCP measures the ledger.
    pub transport: TransportKind,
    /// Background triple-factory threads (`--factory-threads`;
    /// 0 = preprocessing stays inline on the query path). Only takes
    /// effect together with `--offline-mode ot`.
    pub factory_threads: usize,
    /// Triple-pool depth in chunks (`--pool-depth`; 0 = default).
    pub pool_depth: usize,
    /// Pool backpressure (`--pool-backpressure block|fail-fast`).
    pub pool_backpressure: Backpressure,
    /// Count schedule (`--schedule dense|sparse`): the fully-oblivious
    /// cube (default) or the candidate-driven sparse walk that makes
    /// large power-law graphs tractable.
    pub schedule: ScheduleKind,
    /// Wire recv timeout in seconds (`--recv-timeout`): how long a
    /// TCP count waits on a silent peer before failing typed instead
    /// of hanging. Only meaningful with `--transport tcp`.
    pub recv_timeout: Duration,
    /// Quick mode: shrink n and trials for smoke runs.
    pub quick: bool,
    /// `--help`/`-h` was given: print usage and exit successfully.
    pub help: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            n: 2000,
            trials: 5,
            seed: 0,
            out_dir: PathBuf::from("results"),
            data_dir: None,
            threads: 0,
            batch: 0,
            offline: OfflineMode::TrustedDealer,
            kernel: CountKernel::Bitsliced,
            transport: TransportKind::Memory,
            factory_threads: 0,
            pool_depth: 0,
            pool_backpressure: Backpressure::Block,
            schedule: ScheduleKind::Dense,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            quick: false,
            help: false,
        }
    }
}

impl Options {
    /// The triple-pool policy the CLI knobs describe (`--pool-depth 0`
    /// resolves to [`DEFAULT_POOL_DEPTH`], mirroring
    /// `CargoConfig::pool_policy`).
    pub fn pool_policy(&self) -> PoolPolicy {
        PoolPolicy {
            factory_threads: self.factory_threads,
            depth: if self.pool_depth == 0 {
                DEFAULT_POOL_DEPTH
            } else {
                self.pool_depth
            },
            backpressure: self.pool_backpressure,
        }
    }
}

impl Options {
    /// Parses `--flag value` pairs, returning the options and the
    /// positional arguments (subcommands).
    pub fn parse(args: &[String]) -> Result<(Options, Vec<String>), String> {
        let mut opts = Options::default();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let take_value = |i: &mut usize| -> Result<String, String> {
                *i += 1;
                args.get(*i)
                    .cloned()
                    .ok_or_else(|| format!("flag {arg} needs a value"))
            };
            match arg.as_str() {
                "--n" => {
                    opts.n = take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--n: {e}"))?
                }
                "--trials" => {
                    opts.trials = take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--trials: {e}"))?
                }
                "--seed" => {
                    opts.seed = take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--threads" => {
                    opts.threads = take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--batch" => {
                    opts.batch = take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--batch: {e}"))?
                }
                "--offline-mode" => {
                    opts.offline = take_value(&mut i)?
                        .parse()
                        .map_err(|e: String| format!("--offline-mode: {e}"))?
                }
                "--kernel" => {
                    opts.kernel = take_value(&mut i)?
                        .parse()
                        .map_err(|e: String| format!("--kernel: {e}"))?
                }
                "--transport" => {
                    opts.transport = take_value(&mut i)?
                        .parse()
                        .map_err(|e: String| format!("--transport: {e}"))?
                }
                "--factory-threads" => {
                    opts.factory_threads = take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--factory-threads: {e}"))?
                }
                "--pool-depth" => {
                    opts.pool_depth = take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--pool-depth: {e}"))?
                }
                "--pool-backpressure" => {
                    opts.pool_backpressure = take_value(&mut i)?
                        .parse()
                        .map_err(|e: String| format!("--pool-backpressure: {e}"))?
                }
                "--schedule" => {
                    opts.schedule = take_value(&mut i)?
                        .parse()
                        .map_err(|e: String| format!("--schedule: {e}"))?
                }
                "--recv-timeout" => {
                    let secs: f64 = take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--recv-timeout: {e}"))?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err("--recv-timeout: must be a positive number of seconds".into());
                    }
                    opts.recv_timeout = Duration::from_secs_f64(secs);
                }
                "--out-dir" => opts.out_dir = PathBuf::from(take_value(&mut i)?),
                "--data-dir" => opts.data_dir = Some(PathBuf::from(take_value(&mut i)?)),
                "--quick" => opts.quick = true,
                "--help" | "-h" => opts.help = true,
                _ if arg.starts_with("--") => return Err(format!("unknown flag {arg}")),
                _ => positional.push(arg.clone()),
            }
            i += 1;
        }
        if opts.quick {
            opts.n = opts.n.min(500);
            opts.trials = opts.trials.min(2);
        }
        Ok((opts, positional))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<(Options, Vec<String>), String> {
        let args: Vec<String> = v.iter().map(|s| s.to_string()).collect();
        Options::parse(&args)
    }

    #[test]
    fn defaults_match_paper() {
        let (o, pos) = parse(&["fig5"]).unwrap();
        assert_eq!(o.n, 2000);
        assert_eq!(o.trials, 5);
        assert_eq!(pos, vec!["fig5"]);
    }

    #[test]
    fn flags_override() {
        let (o, pos) =
            parse(&["--n", "500", "fig7", "--trials", "3", "--seed", "9"]).unwrap();
        assert_eq!(o.n, 500);
        assert_eq!(o.trials, 3);
        assert_eq!(o.seed, 9);
        assert_eq!(pos, vec!["fig7"]);
    }

    #[test]
    fn count_knobs_parse() {
        let (o, _) = parse(&["--threads", "4", "--batch", "16", "fig11"]).unwrap();
        assert_eq!(o.threads, 4);
        assert_eq!(o.batch, 16);
        let (o, _) = parse(&["fig11"]).unwrap();
        assert_eq!((o.threads, o.batch), (0, 0), "defaults defer to config");
    }

    #[test]
    fn offline_mode_parses() {
        let (o, _) = parse(&["--offline-mode", "ot", "table2"]).unwrap();
        assert_eq!(o.offline, OfflineMode::OtExtension);
        let (o, _) = parse(&["--offline-mode", "dealer", "table2"]).unwrap();
        assert_eq!(o.offline, OfflineMode::TrustedDealer);
        let (o, _) = parse(&["table2"]).unwrap();
        assert_eq!(o.offline, OfflineMode::TrustedDealer, "dealer is default");
        assert!(parse(&["--offline-mode", "wat"]).is_err());
    }

    #[test]
    fn kernel_parses() {
        let (o, _) = parse(&["--kernel", "scalar", "table2"]).unwrap();
        assert_eq!(o.kernel, CountKernel::Scalar);
        let (o, _) = parse(&["--kernel", "bitsliced", "table2"]).unwrap();
        assert_eq!(o.kernel, CountKernel::Bitsliced);
        let (o, _) = parse(&["table2"]).unwrap();
        assert_eq!(o.kernel, CountKernel::Bitsliced, "bitsliced is default");
        assert!(parse(&["--kernel", "wat"]).is_err());
    }

    #[test]
    fn transport_parses() {
        let (o, _) = parse(&["--transport", "tcp", "table2"]).unwrap();
        assert_eq!(o.transport, TransportKind::Tcp);
        let (o, _) = parse(&["table2"]).unwrap();
        assert_eq!(o.transport, TransportKind::Memory, "memory is default");
        assert!(parse(&["--transport", "udp"]).is_err());
    }

    #[test]
    fn pool_knobs_parse() {
        let (o, _) = parse(&[
            "--factory-threads",
            "2",
            "--pool-depth",
            "8",
            "--pool-backpressure",
            "fail-fast",
            "table2",
        ])
        .unwrap();
        assert_eq!(o.factory_threads, 2);
        assert_eq!(o.pool_depth, 8);
        assert_eq!(o.pool_backpressure, Backpressure::FailFast);
        assert_eq!(o.pool_policy().depth, 8);
        let (o, _) = parse(&["table2"]).unwrap();
        assert_eq!(o.factory_threads, 0, "inline by default");
        assert!(!o.pool_policy().enabled());
        assert_eq!(o.pool_policy().depth, DEFAULT_POOL_DEPTH, "0 = default");
        assert!(parse(&["--pool-backpressure", "wat"]).is_err());
    }

    #[test]
    fn schedule_parses() {
        let (o, _) = parse(&["--schedule", "sparse", "table2"]).unwrap();
        assert_eq!(o.schedule, ScheduleKind::Sparse);
        let (o, _) = parse(&["table2"]).unwrap();
        assert_eq!(o.schedule, ScheduleKind::Dense, "dense is default");
        assert!(parse(&["--schedule", "wat"]).is_err());
    }

    #[test]
    fn recv_timeout_parses() {
        let (o, _) = parse(&["--recv-timeout", "2.5", "table2"]).unwrap();
        assert_eq!(o.recv_timeout, Duration::from_millis(2500));
        let (o, _) = parse(&["table2"]).unwrap();
        assert_eq!(o.recv_timeout, DEFAULT_RECV_TIMEOUT, "120 s default");
        assert!(parse(&["--recv-timeout", "0"]).is_err());
        assert!(parse(&["--recv-timeout", "wat"]).is_err());
    }

    #[test]
    fn quick_mode_shrinks() {
        let (o, _) = parse(&["--quick", "all"]).unwrap();
        assert!(o.n <= 500);
        assert!(o.trials <= 2);
    }

    #[test]
    fn data_dir_is_optional_path() {
        let (o, _) = parse(&["--data-dir", "/tmp/snap", "table4"]).unwrap();
        assert_eq!(o.data_dir.unwrap(), PathBuf::from("/tmp/snap"));
    }

    #[test]
    fn help_flag_is_recognised() {
        let (o, _) = parse(&["--help"]).unwrap();
        assert!(o.help);
        let (o, _) = parse(&["-h"]).unwrap();
        assert!(o.help);
    }

    #[test]
    fn unknown_flag_errors() {
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--n"]).is_err(), "missing value");
    }
}
