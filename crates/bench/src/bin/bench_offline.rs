//! Offline-phase bench sweep → `BENCH_offline.json`.
//!
//! Measures the secure count with `OfflineMode::OtExtension` — the
//! IKNP/Gilboa preprocessing dominates, so this is effectively the
//! offline phase's cost — over an `n × batch` grid on the
//! Facebook-calibrated preset, and persists
//! `(n, threads, batch, triples, ns/triple, bytes/triple)` rows, where
//! `bytes/triple` is the **offline** bytes per Multiplication Group
//! (deterministic: the extension-column/correction/derandomisation
//! formula pinned in `cargo_mpc::offline`, amortised over `C(n,3)`
//! groups). The committed baseline lives at
//! `crates/bench/baselines/BENCH_offline.json`; `bench_compare` gates
//! a fresh report against it — bytes exactly, wall-clock within the
//! tolerance band.
//!
//! ```text
//! usage: bench_offline [--n 40,60,80] [--batch 1,64]
//!                      [--out BENCH_offline.json] [--measure-ms 400] [--quick]
//! ```

use cargo_bench::baseline::{BenchReport, BenchRow};
use cargo_core::secure_triangle_count_with;
use cargo_graph::generators::presets::SnapDataset;
use cargo_core::CountKernel;
use cargo_mpc::OfflineMode;
use criterion::{black_box, measure_median_ns};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    ns: Vec<usize>,
    batches: Vec<usize>,
    out: PathBuf,
    measure_ms: u64,
}

fn usage() -> String {
    "usage: bench_offline [--n 40,60,80] [--batch 1,64]\n\
     \x20      [--out BENCH_offline.json] [--measure-ms 400] [--quick]"
        .to_string()
}

fn parse_list(v: &str, flag: &str) -> Result<Vec<usize>, String> {
    v.split(',')
        .map(|x| x.trim().parse::<usize>().map_err(|e| format!("{flag}: {e}")))
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        ns: vec![40, 60, 80],
        batches: vec![1, 64],
        out: PathBuf::from("BENCH_offline.json"),
        measure_ms: 400,
    };
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| "flag needs a value".to_string())
        };
        match argv[i].as_str() {
            "--n" => args.ns = parse_list(&take(&mut i)?, "--n")?,
            "--batch" => args.batches = parse_list(&take(&mut i)?, "--batch")?,
            "--out" => args.out = PathBuf::from(take(&mut i)?),
            "--measure-ms" => {
                args.measure_ms = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--measure-ms: {e}"))?
            }
            "--quick" => {
                args.ns = vec![40, 60];
                args.measure_ms = 200;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let mut report = BenchReport {
        bench: "offline".into(),
        rows: Vec::new(),
    };
    for &n in &args.ns {
        let m = full.induced_prefix(n).to_bit_matrix();
        for &batch in &args.batches {
            // One untimed run pins the deterministic offline cost model.
            let probe = secure_triangle_count_with(&m, 1, 1, batch, OfflineMode::OtExtension);
            let dealer = secure_triangle_count_with(&m, 1, 1, batch, OfflineMode::TrustedDealer);
            assert_eq!(
                (probe.share1, probe.share2),
                (dealer.share1, dealer.share2),
                "OT offline material must be bit-identical to the dealer's"
            );
            let triples = probe.triples.max(1);
            let median_ns = measure_median_ns(3, Duration::from_millis(args.measure_ms), || {
                black_box(secure_triangle_count_with(
                    &m,
                    1,
                    1,
                    batch,
                    OfflineMode::OtExtension,
                ))
            });
            let row = BenchRow {
                n,
                threads: 1,
                batch,
                kernel: CountKernel::default().to_string(),
                transport: "memory".into(),
                triples: probe.triples,
                ns_per_triple: median_ns / triples as f64,
                bytes_per_triple: probe.net.offline.bytes as f64 / triples as f64,
            };
            println!(
                "n={n:<4} batch={batch:<4} {:>10.1} ns/MG  {:>8.1} offline B/MG  \
                 ({} ext OTs, {} offline rounds)",
                row.ns_per_triple,
                row.bytes_per_triple,
                probe.net.offline.extended_ots,
                probe.net.offline.rounds
            );
            report.rows.push(row);
        }
    }
    if let Err(e) = report.write(&args.out) {
        eprintln!("error writing {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} rows)", args.out.display(), report.rows.len());
}
