//! Offline-phase bench sweep → `BENCH_offline.json`.
//!
//! Measures the secure count with `OfflineMode::OtExtension` — the
//! IKNP/Gilboa preprocessing dominates, so this is effectively the
//! offline phase's cost — over an `n × batch` grid on the
//! Facebook-calibrated preset, and persists
//! `(n, threads, batch, pool, triples, ns/triple, bytes/triple, iqr)`
//! rows, where `bytes/triple` is the **offline** bytes per
//! Multiplication Group (deterministic: the
//! extension-column/correction/derandomisation formula pinned in
//! `cargo_mpc::offline`, amortised over `C(n,3)` groups).
//!
//! Each grid point is additionally swept over the **triple-factory
//! grid** (`--factory-threads × --pool-depth`): `0` factory threads is
//! the inline preprocessing dialogue (`pool` column `"inline"`, the
//! only shape legacy baselines know), `f > 0` routes generation
//! through a background [`cargo_mpc::TriplePool`] (`"pool/t{f}d{d}"`).
//! Timings are the **median of `--repeat` samples** with the
//! interquartile range persisted alongside, so the `bench_compare`
//! gate judges a stable statistic instead of a single noisy run.
//! The committed baseline lives at
//! `crates/bench/baselines/BENCH_offline.json`.
//!
//! ```text
//! usage: bench_offline [--n 40,60,80] [--batch 1,64]
//!                      [--factory-threads 0,2] [--pool-depth 4]
//!                      [--repeat 5] [--out BENCH_offline.json]
//!                      [--measure-ms 400] [--quick]
//! ```

use cargo_bench::baseline::{BenchReport, BenchRow};
use cargo_core::{secure_triangle_count_pooled, secure_triangle_count_with};
use cargo_core::CountKernel;
use cargo_graph::generators::presets::SnapDataset;
use cargo_mpc::{Backpressure, OfflineMode, PoolPolicy};
use criterion::{black_box, measure_median_iqr_ns};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    ns: Vec<usize>,
    batches: Vec<usize>,
    factory_threads: Vec<usize>,
    pool_depths: Vec<usize>,
    repeat: usize,
    out: PathBuf,
    measure_ms: u64,
}

fn usage() -> String {
    "usage: bench_offline [--n 40,60,80] [--batch 1,64]\n\
     \x20      [--factory-threads 0,2] [--pool-depth 4] [--repeat 5]\n\
     \x20      [--out BENCH_offline.json] [--measure-ms 400] [--quick]"
        .to_string()
}

fn parse_list(v: &str, flag: &str) -> Result<Vec<usize>, String> {
    v.split(',')
        .map(|x| x.trim().parse::<usize>().map_err(|e| format!("{flag}: {e}")))
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        ns: vec![40, 60, 80],
        batches: vec![1, 64],
        factory_threads: vec![0, 2],
        pool_depths: vec![4],
        repeat: 5,
        out: PathBuf::from("BENCH_offline.json"),
        measure_ms: 400,
    };
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| "flag needs a value".to_string())
        };
        match argv[i].as_str() {
            "--n" => args.ns = parse_list(&take(&mut i)?, "--n")?,
            "--batch" => args.batches = parse_list(&take(&mut i)?, "--batch")?,
            "--factory-threads" => {
                args.factory_threads = parse_list(&take(&mut i)?, "--factory-threads")?
            }
            "--pool-depth" => args.pool_depths = parse_list(&take(&mut i)?, "--pool-depth")?,
            "--repeat" => {
                args.repeat = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?
            }
            "--out" => args.out = PathBuf::from(take(&mut i)?),
            "--measure-ms" => {
                args.measure_ms = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--measure-ms: {e}"))?
            }
            "--quick" => {
                args.ns = vec![40, 60];
                args.measure_ms = 200;
                args.repeat = 3;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
        i += 1;
    }
    if args.repeat == 0 {
        return Err("--repeat must be at least 1".into());
    }
    Ok(args)
}

/// The keyed `pool` column value for one factory grid point.
fn pool_label(factory_threads: usize, depth: usize) -> String {
    if factory_threads == 0 {
        "inline".to_string()
    } else {
        format!("pool/t{factory_threads}d{depth}")
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let mut report = BenchReport {
        bench: "offline".into(),
        rows: Vec::new(),
    };
    for &n in &args.ns {
        let m = full.induced_prefix(n).to_bit_matrix();
        for &batch in &args.batches {
            // One untimed run pins the deterministic offline cost model.
            let probe = secure_triangle_count_with(&m, 1, 1, batch, OfflineMode::OtExtension);
            let dealer = secure_triangle_count_with(&m, 1, 1, batch, OfflineMode::TrustedDealer);
            assert_eq!(
                (probe.share1, probe.share2),
                (dealer.share1, dealer.share2),
                "OT offline material must be bit-identical to the dealer's"
            );
            let triples = probe.triples.max(1);
            for &f in &args.factory_threads {
                // Depth only matters once a factory exists; collapse
                // the f = 0 column to one inline row per (n, batch).
                let depths: &[usize] = if f == 0 { &[0] } else { &args.pool_depths };
                for &d in depths {
                    let policy = PoolPolicy {
                        factory_threads: f,
                        depth: d.max(1),
                        backpressure: Backpressure::Block,
                    };
                    let (median_ns, iqr_ns) = measure_median_iqr_ns(
                        args.repeat,
                        Duration::from_millis(args.measure_ms),
                        || {
                            if f == 0 {
                                black_box(secure_triangle_count_with(
                                    &m,
                                    1,
                                    1,
                                    batch,
                                    OfflineMode::OtExtension,
                                ))
                            } else {
                                black_box(secure_triangle_count_pooled(
                                    &m,
                                    1,
                                    1,
                                    batch,
                                    CountKernel::default(),
                                    policy,
                                ))
                            }
                        },
                    );
                    let row = BenchRow {
                        n,
                        threads: 1,
                        batch,
                        kernel: CountKernel::default().to_string(),
                        transport: "memory".into(),
                        pool: pool_label(f, d),
                        schedule: "dense".into(),
                        triples: probe.triples,
                        ns_per_triple: median_ns / triples as f64,
                        // Pooling never changes the modeled ledger —
                        // pinned by the pool_equivalence suite — so the
                        // probe's cost model covers every grid point.
                        bytes_per_triple: probe.net.offline.bytes as f64 / triples as f64,
                        iqr_ns: iqr_ns / triples as f64,
                        peak_rss_mb: 0.0,
                    };
                    println!(
                        "n={n:<4} batch={batch:<4} pool={:<10} {:>10.1} ns/MG  \
                         iqr {:>7.1}  {:>8.1} offline B/MG  \
                         ({} ext OTs, {} offline rounds)",
                        row.pool,
                        row.ns_per_triple,
                        row.iqr_ns,
                        row.bytes_per_triple,
                        probe.net.offline.extended_ots,
                        probe.net.offline.rounds
                    );
                    report.rows.push(row);
                }
            }
        }
    }
    if let Err(e) = report.write(&args.out) {
        eprintln!("error writing {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} rows)", args.out.display(), report.rows.len());
}
