//! Scalar-vs-batch MG-kernel sweep → `BENCH_mg_kernel.json`.
//!
//! The A/B harness for `CargoConfig::kernel`: measures the secure
//! count under both Count kernels — the per-triple scalar
//! transcription and the structure-of-arrays batch kernel
//! ([`cargo_mpc::mul3_batch`]) — over an `n × batch` grid on the
//! Facebook-calibrated preset, emitting one row per
//! `(n, batch, kernel)` with `ns/triple` and the (kernel-invariant)
//! `bytes/triple`. Before timing anything it asserts the two kernels
//! produce identical share pairs, so a drifting kernel can never
//! publish a number.
//!
//! The committed baseline lives at
//! `crates/bench/baselines/BENCH_mg_kernel.json`; the acceptance bar
//! is the batch kernel at ≥2× the scalar throughput at `n ≥ 200`,
//! which `bench_compare` then protects like every other baseline.
//!
//! ```text
//! usage: bench_mg_kernel [--n 200,400] [--batch 16,64,256]
//!                        [--out BENCH_mg_kernel.json] [--measure-ms 600] [--quick]
//! ```

use cargo_bench::baseline::{BenchReport, BenchRow};
use cargo_core::{secure_triangle_count_kernel, CountKernel, OfflineMode};
use cargo_graph::generators::presets::SnapDataset;
use criterion::{black_box, measure_median_iqr_ns};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    ns: Vec<usize>,
    batches: Vec<usize>,
    out: PathBuf,
    measure_ms: u64,
}

fn usage() -> String {
    "usage: bench_mg_kernel [--n 200,400] [--batch 16,64,256]\n\
     \x20      [--out BENCH_mg_kernel.json] [--measure-ms 600] [--quick]"
        .to_string()
}

fn parse_list(v: &str, flag: &str) -> Result<Vec<usize>, String> {
    v.split(',')
        .map(|x| x.trim().parse::<usize>().map_err(|e| format!("{flag}: {e}")))
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        ns: vec![200, 400],
        batches: vec![16, 64, 256],
        out: PathBuf::from("BENCH_mg_kernel.json"),
        measure_ms: 600,
    };
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| "flag needs a value".to_string())
        };
        match argv[i].as_str() {
            "--n" => args.ns = parse_list(&take(&mut i)?, "--n")?,
            "--batch" => args.batches = parse_list(&take(&mut i)?, "--batch")?,
            "--out" => args.out = PathBuf::from(take(&mut i)?),
            "--measure-ms" => {
                args.measure_ms = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--measure-ms: {e}"))?
            }
            "--quick" => {
                args.ns = vec![200];
                args.batches = vec![64];
                args.measure_ms = 300;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let mut report = BenchReport {
        bench: "mg_kernel".into(),
        rows: Vec::new(),
    };
    for &n in &args.ns {
        let m = full.induced_prefix(n).to_bit_matrix();
        for &batch in &args.batches {
            // Equivalence gate before any timing: both kernels, same
            // shares, same online ledger.
            let probe_scalar = secure_triangle_count_kernel(
                &m,
                1,
                1,
                batch,
                OfflineMode::TrustedDealer,
                CountKernel::Scalar,
            );
            let probe_batch = secure_triangle_count_kernel(
                &m,
                1,
                1,
                batch,
                OfflineMode::TrustedDealer,
                CountKernel::Bitsliced,
            );
            assert_eq!(
                probe_scalar, probe_batch,
                "kernels must be bit-identical before being compared"
            );
            let triples = probe_scalar.triples.max(1);
            let mut per_kernel = [0.0f64; 2];
            for (slot, kernel) in [CountKernel::Scalar, CountKernel::Bitsliced]
                .into_iter()
                .enumerate()
            {
                let (median_ns, iqr_ns) =
                    measure_median_iqr_ns(8, Duration::from_millis(args.measure_ms), || {
                        black_box(secure_triangle_count_kernel(
                            &m,
                            1,
                            1,
                            batch,
                            OfflineMode::TrustedDealer,
                            kernel,
                        ))
                    });
                let row = BenchRow {
                    n,
                    threads: 1,
                    batch,
                    kernel: kernel.to_string(),
                    transport: "memory".into(),
                    pool: "inline".into(),
                    schedule: "dense".into(),
                    triples: probe_scalar.triples,
                    ns_per_triple: median_ns / triples as f64,
                    bytes_per_triple: probe_scalar.net.bytes as f64 / triples as f64,
                    iqr_ns: iqr_ns / triples as f64,
                    peak_rss_mb: 0.0,
                };
                per_kernel[slot] = row.ns_per_triple;
                println!(
                    "n={n:<5} batch={batch:<4} kernel={:<9} {:>8.2} ns/triple  {:>5.1} B/triple",
                    row.kernel, row.ns_per_triple, row.bytes_per_triple
                );
                report.rows.push(row);
            }
            println!(
                "  -> n={n} batch={batch}: batch kernel is {:.2}x the scalar throughput",
                per_kernel[0] / per_kernel[1]
            );
        }
    }
    if let Err(e) = report.write(&args.out) {
        eprintln!("error writing {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} rows)", args.out.display(), report.rows.len());
}
