//! Micro-benchmark sweep of the non-Count hot paths →
//! `BENCH_micro.json`.
//!
//! The criterion-shim benches (`mul3`, `perturb`, `projection`, …)
//! print trend-only timings; this binary measures the same operations
//! through the shim's measurement loop into the machine-readable
//! baseline schema so `bench_compare` can gate them like the Count
//! sweeps — every committed baseline under `crates/bench/baselines/`
//! is enforced, not just the secure-count ones.
//!
//! Rows reuse the shared schema with the `kernel` column carrying the
//! operation name; `n` is the input size, `triples` the operations per
//! measured iteration, and `bytes_per_triple` the deterministic wire
//! bytes per operation (zero for the local-only ones).
//!
//! ```text
//! usage: bench_micro [--out BENCH_micro.json] [--measure-ms 400] [--quick]
//! ```

use cargo_bench::baseline::{BenchReport, BenchRow};
use cargo_core::{estimate_max_degree, project_matrix};
use cargo_dp::DistributedLaplace;
use cargo_graph::generators::presets::SnapDataset;
use cargo_mpc::ot::OT_KAPPA;
use cargo_mpc::{
    beaver_mul, cols_to_rows_scalar, cols_to_rows_simd, cols_to_rows_simd_into, cr_hash_batch, cr_hash_scalar, mul3,
    Dealer, NetStats, Ring64, SimdTier,
};
use criterion::{black_box, measure_median_iqr_ns};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    out: PathBuf,
    measure_ms: u64,
}

fn usage() -> String {
    "usage: bench_micro [--out BENCH_micro.json] [--measure-ms 400] [--quick]".to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from("BENCH_micro.json"),
        measure_ms: 400,
    };
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| "flag needs a value".to_string())
        };
        match argv[i].as_str() {
            "--out" => args.out = PathBuf::from(take(&mut i)?),
            "--measure-ms" => {
                args.measure_ms = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--measure-ms: {e}"))?
            }
            "--quick" => args.measure_ms = 150,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let budget = Duration::from_millis(args.measure_ms);
    let mut report = BenchReport {
        bench: "micro".into(),
        rows: Vec::new(),
    };
    let mut push = |kernel: &str, n: usize, ops: u64, timing: (f64, f64), bytes_per_op: f64| {
        let (median_ns, iqr_ns) = timing;
        let row = BenchRow {
            n,
            threads: 1,
            batch: 1,
            kernel: kernel.into(),
            transport: "memory".into(),
            pool: "inline".into(),
            schedule: "dense".into(),
            triples: ops,
            ns_per_triple: median_ns / ops as f64,
            bytes_per_triple: bytes_per_op,
            iqr_ns: iqr_ns / ops as f64,
            peak_rss_mb: 0.0,
        };
        println!(
            "{kernel:<18} n={n:<5} {:>10.2} ns/op  {:>5.1} B/op",
            row.ns_per_triple, row.bytes_per_triple
        );
        report.rows.push(row);
    };

    // mul3: the protocol-object three-value multiplication, including
    // the streaming dealer draw (the shape the mul3 criterion bench
    // measures). One opening round: 6 elements, 48 bytes.
    {
        let mut dealer = Dealer::new(1);
        let sa = dealer.share(Ring64::ONE);
        let sb = dealer.share(Ring64::ONE);
        let sc = dealer.share(Ring64::ZERO);
        let mut probe_net = NetStats::new();
        mul3(
            (sa.s1, sa.s2),
            (sb.s1, sb.s2),
            (sc.s1, sc.s2),
            dealer.mul_group(),
            &mut probe_net,
        );
        let ns = measure_median_iqr_ns(12, budget, || {
            let mg = dealer.mul_group();
            let mut net = NetStats::new();
            black_box(mul3(
                (sa.s1, sa.s2),
                (sb.s1, sb.s2),
                (sc.s1, sc.s2),
                mg,
                &mut net,
            ))
        });
        push("mul3", 1, 1, ns, probe_net.bytes as f64);
    }

    // beaver_mul: the classic two-value multiplication it improves on.
    {
        let mut dealer = Dealer::new(2);
        let sa = dealer.share(Ring64::ONE);
        let sb = dealer.share(Ring64::ONE);
        let mut probe_net = NetStats::new();
        beaver_mul((sa.s1, sa.s2), (sb.s1, sb.s2), dealer.beaver(), &mut probe_net);
        let ns = measure_median_iqr_ns(12, budget, || {
            let t = dealer.beaver();
            let mut net = NetStats::new();
            black_box(beaver_mul((sa.s1, sa.s2), (sb.s1, sb.s2), t, &mut net))
        });
        push("beaver_mul", 1, 1, ns, probe_net.bytes as f64);
    }

    // projection: Algorithm 3 over the Facebook preset (ns per user
    // row; local computation, zero wire bytes).
    {
        let n = 1000usize;
        let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
        let g = full.induced_prefix(n);
        let matrix = g.to_bit_matrix();
        let degrees = g.degrees();
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = estimate_max_degree(&degrees, 0.2, &mut rng).noisy_degrees;
        let ns = measure_median_iqr_ns(6, budget, || {
            black_box(project_matrix(&matrix, &degrees, &noisy, 100))
        });
        push("projection", n, n as u64, ns, 0.0);
    }

    // perturb_noise: Algorithm 5's distributed Gamma noise, all users
    // (ns per user; the shares ride the existing upload, zero
    // server↔server bytes).
    {
        let n = 2000usize;
        let dist = DistributedLaplace::new(n, 1000.0, 1.8);
        let mut rng = StdRng::seed_from_u64(5);
        let ns = measure_median_iqr_ns(6, budget, || black_box(dist.sample_all(&mut rng)));
        push("perturb_noise", n, n as u64, ns, 0.0);
    }

    // max_degree: Algorithm 2 over all users (ns per user).
    {
        let n = 2000usize;
        let degrees: Vec<usize> = (0..n).map(|i| i % 97).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let ns = measure_median_iqr_ns(6, budget, || {
            black_box(estimate_max_degree(&degrees, 0.2, &mut rng))
        });
        push("max_degree", n, n as u64, ns, 0.0);
    }

    // ot_transpose / ot_hash: the two OT-extension inner loops, scalar
    // reference vs the runtime-dispatched SIMD kernels, over one
    // extension slab (64 words = 4096 rows — exactly what
    // `OtMgEngine` transposes and hashes per batch). The `_simd` rows
    // are the microbench evidence for the vectorisation speedup;
    // bit-equality across tiers is pinned by the
    // `ot_simd_equivalence` proptest suite.
    {
        let words = 64usize;
        let rows = 64 * words;
        let tier = SimdTier::detect();
        let mut seed = 0x9E3779B97F4A7C15u64;
        let cols: Vec<u64> = (0..OT_KAPPA * words)
            .map(|_| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                seed
            })
            .collect();

        let ns = measure_median_iqr_ns(12, budget, || black_box(cols_to_rows_scalar(&cols, words)));
        push("ot_transpose", rows, rows as u64, ns, 0.0);
        // The engine runs the into-form, reusing one buffer pair per
        // chunk — time that, not the allocating wrapper.
        let (mut lo, mut hi) = (vec![0u64; rows], vec![0u64; rows]);
        let ns = measure_median_iqr_ns(12, budget, || {
            cols_to_rows_simd_into(tier, &cols, words, &mut lo, &mut hi);
            black_box(lo[rows - 1])
        });
        push(&format!("ot_transpose_simd/{tier}"), rows, rows as u64, ns, 0.0);

        let (lo, hi) = cols_to_rows_simd(tier, &cols, words);
        let mut out = vec![0u64; rows];
        let ns = measure_median_iqr_ns(12, budget, || {
            for j in 0..rows {
                out[j] = cr_hash_scalar(j as u64, [lo[j], hi[j]]);
            }
            black_box(out[rows - 1])
        });
        push("ot_hash", rows, rows as u64, ns, 0.0);
        let ns = measure_median_iqr_ns(12, budget, || {
            cr_hash_batch(tier, 0, &lo, &hi, [0, 0], &mut out);
            black_box(out[rows - 1])
        });
        push(&format!("ot_hash_simd/{tier}"), rows, rows as u64, ns, 0.0);
    }

    if let Err(e) = report.write(&args.out) {
        eprintln!("error writing {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} rows)", args.out.display(), report.rows.len());
}
