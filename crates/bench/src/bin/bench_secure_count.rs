//! Secure-count bench sweep → `BENCH_secure_count.json`.
//!
//! Measures the batched/sharded Count kernel over an
//! `n × threads × batch` grid on the Facebook-calibrated preset and
//! persists `(n, threads, batch, triples, ns/triple, bytes/triple)`
//! rows through the criterion shim's measurement loop
//! ([`criterion::measure_median_ns`]). The committed baseline lives at
//! `crates/bench/baselines/BENCH_secure_count.json`; CI regenerates a
//! fresh report and gates it with `bench_compare`.
//!
//! ```text
//! usage: bench_secure_count [--n 200,400,600] [--threads 1,2,4]
//!                           [--batch 1,64] [--transport memory|tcp]
//!                           [--out BENCH_secure_count.json]
//!                           [--measure-ms 700] [--quick]
//! ```
//!
//! `--transport memory` (the default — and what every legacy report's
//! rows were) measures the in-process kernel; `--transport tcp`
//! measures the sharded message-passing runtime over **real loopback
//! sockets**, the sweep behind the committed `BENCH_transport.json`
//! baseline. Before timing a TCP point the harness asserts its shares
//! and online ledger equal the in-process run's, so the baseline
//! doubles as a transport-equivalence gate in release mode.

use cargo_bench::baseline::{BenchReport, BenchRow};
use cargo_bench::experiments::sparse::power_law;
use cargo_core::{
    peak_rss_bytes, secure_triangle_count_planned, secure_triangle_count_streamed,
    threaded_secure_count_tcp_planned, CandidateSet, CountKernel, OfflineMode, ScheduleKind,
    SchedulePlan, SecureCountResult, TransportKind, DEFAULT_TILE_THRESHOLD,
};
use cargo_graph::generators::presets::SnapDataset;
use cargo_graph::CsrGraph;
use cargo_mpc::PoolPolicy;
use criterion::{black_box, measure_median_iqr_ns};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    ns: Vec<usize>,
    threads: Vec<usize>,
    batches: Vec<usize>,
    transport: TransportKind,
    schedule: ScheduleKind,
    powerlaw: bool,
    tile_threshold: u32,
    out: PathBuf,
    measure_ms: u64,
}

fn usage() -> String {
    "usage: bench_secure_count [--n 200,400,600] [--threads 1,2,4] [--batch 1,64]\n\
     \x20      [--transport memory|tcp] [--schedule dense|sparse|sparse-stream]\n\
     \x20      [--powerlaw] [--tile-threshold 8]\n\
     \x20      [--out BENCH_secure_count.json] [--measure-ms 700] [--quick]\n\
     \n\
     --powerlaw sizes a synthetic heavy-tailed Chung-Lu graph per n instead\n\
     of slicing the Facebook preset — the only shape that scales to n = 10^6.\n\
     --schedule sparse-stream runs the CSR-native streamed count (memory\n\
     transport only, no n x n matrix anywhere) and reports peak RSS per row."
        .to_string()
}

fn parse_list(v: &str, flag: &str) -> Result<Vec<usize>, String> {
    v.split(',')
        .map(|x| x.trim().parse::<usize>().map_err(|e| format!("{flag}: {e}")))
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        ns: vec![200, 400, 600],
        threads: vec![1, 2, 4],
        batches: vec![1, 64],
        transport: TransportKind::Memory,
        schedule: ScheduleKind::Dense,
        powerlaw: false,
        tile_threshold: DEFAULT_TILE_THRESHOLD,
        out: PathBuf::from("BENCH_secure_count.json"),
        measure_ms: 700,
    };
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| "flag needs a value".to_string())
        };
        match argv[i].as_str() {
            "--n" => args.ns = parse_list(&take(&mut i)?, "--n")?,
            "--threads" => args.threads = parse_list(&take(&mut i)?, "--threads")?,
            "--batch" => args.batches = parse_list(&take(&mut i)?, "--batch")?,
            "--transport" => {
                args.transport = take(&mut i)?
                    .parse()
                    .map_err(|e: String| format!("--transport: {e}"))?
            }
            "--schedule" => {
                args.schedule = take(&mut i)?
                    .parse()
                    .map_err(|e: String| format!("--schedule: {e}"))?
            }
            "--powerlaw" => args.powerlaw = true,
            "--tile-threshold" => {
                args.tile_threshold = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--tile-threshold: {e}"))?
            }
            "--out" => args.out = PathBuf::from(take(&mut i)?),
            "--measure-ms" => {
                args.measure_ms = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--measure-ms: {e}"))?
            }
            "--quick" => {
                args.ns = vec![100, 200];
                args.measure_ms = 300;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let max_threads = args.threads.iter().copied().max().unwrap_or(1);
    if cores < max_threads {
        eprintln!(
            "warning: sweeping up to {max_threads} threads on a {cores}-core machine — \
             thread-scaling rows will be flat here and only meaningful on multi-core hardware"
        );
    }
    if args.schedule == ScheduleKind::SparseStream && args.transport == TransportKind::Tcp {
        eprintln!(
            "--schedule sparse-stream is the CSR-native in-process sweep; \
             --transport tcp is not supported there (the TCP runtime accepts \
             CsrStream plans through the library API)"
        );
        std::process::exit(2);
    }
    // The Facebook preset only matters for the matrix-shaped sweeps;
    // --powerlaw sizes a synthetic graph per n instead.
    let full = if args.powerlaw {
        None
    } else {
        Some(SnapDataset::Facebook.load_or_synthesize(None, 0).0)
    };
    let mut report = BenchReport {
        bench: "secure_count".into(),
        rows: Vec::new(),
    };
    let transport = args.transport.to_string();
    let schedule = args.schedule.to_string();
    for &n in &args.ns {
        let g = match &full {
            Some(full) => full.induced_prefix(n),
            None => power_law(n, 0),
        };
        if args.schedule == ScheduleKind::SparseStream {
            // CSR-native streamed path: no n × n matrix is ever built —
            // at n = 10⁶ the BitMatrix alone would be 125 GB. The CSR
            // arrays plus O(chunk) worker scratch are the whole
            // footprint, and the per-row peak-RSS column is the proof.
            let csr = Arc::new(CsrGraph::from_graph(&g));
            drop(g);
            for &threads in &args.threads {
                for &batch in &args.batches {
                    let run = || {
                        secure_triangle_count_streamed(&csr, 1, threads, batch, args.tile_threshold)
                    };
                    let t0 = std::time::Instant::now();
                    let probe = run();
                    let probe_ns = t0.elapsed().as_nanos() as f64;
                    let triples = probe.triples.max(1);
                    // --measure-ms 0: trust the probe's single timing —
                    // the large-graph smoke can't afford repeat runs.
                    let (median_ns, iqr_ns) = if args.measure_ms == 0 {
                        (probe_ns, 0.0)
                    } else {
                        measure_median_iqr_ns(10, Duration::from_millis(args.measure_ms), || {
                            black_box(run())
                        })
                    };
                    let row = BenchRow {
                        n,
                        threads,
                        batch,
                        kernel: CountKernel::default().to_string(),
                        transport: transport.clone(),
                        pool: "inline".into(),
                        schedule: schedule.clone(),
                        triples: probe.triples,
                        ns_per_triple: median_ns / triples as f64,
                        bytes_per_triple: probe.net.bytes as f64 / triples as f64,
                        iqr_ns: iqr_ns / triples as f64,
                        peak_rss_mb: peak_rss_bytes().map_or(0.0, |b| b as f64 / 1e6),
                    };
                    println!(
                        "n={n:<7} threads={threads:<2} batch={batch:<4} transport={transport:<6} \
                         schedule={schedule:<13} {:>8.2} ns/triple  {:>5.1} B/triple  \
                         peak {:>7.1} MB",
                        row.ns_per_triple, row.bytes_per_triple, row.peak_rss_mb
                    );
                    report.rows.push(row);
                }
            }
            continue;
        }
        let m = g.to_bit_matrix();
        // Both parties derive the same plan from the public matrix; the
        // sweep builds it once per n, outside the timed loop (real
        // deployments amortise it the same way).
        let plan = match args.schedule {
            ScheduleKind::Dense => SchedulePlan::DenseCube,
            ScheduleKind::Sparse => {
                SchedulePlan::CandidatePairs(Arc::new(CandidateSet::from_support(&m)))
            }
            ScheduleKind::SparseStream => unreachable!("handled by the CSR-native branch"),
        };
        for &threads in &args.threads {
            for &batch in &args.batches {
                // One untimed run pins the deterministic cost model —
                // and, for TCP, gates the transport equivalence before
                // any timing is trusted.
                let memory_run = || {
                    secure_triangle_count_planned(
                        &m,
                        1,
                        threads,
                        batch,
                        OfflineMode::TrustedDealer,
                        CountKernel::default(),
                        plan.clone(),
                    )
                };
                let tcp_run = || {
                    threaded_secure_count_tcp_planned(
                        &m,
                        1,
                        threads,
                        batch,
                        OfflineMode::TrustedDealer,
                        PoolPolicy::INLINE,
                        plan.clone(),
                    )
                };
                let run: &dyn Fn() -> SecureCountResult = match args.transport {
                    TransportKind::Memory => &memory_run,
                    TransportKind::Tcp => &tcp_run,
                };
                let probe = run();
                if args.transport == TransportKind::Tcp {
                    let reference = memory_run();
                    assert_eq!(probe.share1, reference.share1, "TCP shares diverged");
                    assert_eq!(probe.share2, reference.share2, "TCP shares diverged");
                    assert_eq!(probe.net, reference.net, "TCP wire != modeled ledger");
                }
                let triples = probe.triples.max(1);
                let (median_ns, iqr_ns) = measure_median_iqr_ns(
                    10,
                    Duration::from_millis(args.measure_ms),
                    || black_box(run()),
                );
                let row = BenchRow {
                    n,
                    threads,
                    batch,
                    kernel: CountKernel::default().to_string(),
                    transport: transport.clone(),
                    pool: "inline".into(),
                    schedule: schedule.clone(),
                    triples: probe.triples,
                    ns_per_triple: median_ns / triples as f64,
                    bytes_per_triple: probe.net.bytes as f64 / triples as f64,
                    iqr_ns: iqr_ns / triples as f64,
                    peak_rss_mb: peak_rss_bytes().map_or(0.0, |b| b as f64 / 1e6),
                };
                println!(
                    "n={n:<5} threads={threads:<2} batch={batch:<4} transport={transport:<6} \
                     schedule={schedule:<6} {:>8.2} ns/triple  {:>5.1} B/triple",
                    row.ns_per_triple, row.bytes_per_triple
                );
                report.rows.push(row);
            }
        }
        // Per-n thread-scaling summary at the largest batch.
        if let Some(&b) = args.batches.iter().max() {
            let kernel = CountKernel::default().to_string();
            if let (Some(one), Some(best)) = (
                report.find(n, 1, b, &kernel, &transport, "inline", &schedule),
                args.threads
                    .iter()
                    .filter_map(|&t| report.find(n, t, b, &kernel, &transport, "inline", &schedule))
                    .min_by(|a, c| a.ns_per_triple.total_cmp(&c.ns_per_triple)),
            ) {
                println!(
                    "  -> n={n}: best {}t is {:.2}x the 1-thread throughput (batch {b})",
                    best.threads,
                    one.ns_per_triple / best.ns_per_triple
                );
            }
        }
    }
    if let Err(e) = report.write(&args.out) {
        eprintln!("error writing {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} rows)", args.out.display(), report.rows.len());
}
