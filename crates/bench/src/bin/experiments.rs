//! The experiment driver: regenerates every table and figure of the
//! CARGO paper's evaluation. See `cargo-bench`'s crate docs or run with
//! no arguments for usage.

use cargo_bench::experiments;
use cargo_bench::Options;

fn usage() -> String {
    format!(
        "usage: experiments [flags] <cmd> [<cmd> ...]\n\
         commands: {} | all | sparse\n\
         flags: --n <users=2000> --trials <t=5> --seed <s=0>\n\
         \x20      --out-dir <dir=results> --data-dir <snap-dir>\n\
         \x20      --threads <w=0 (all cores)> --batch <b=0 (default 64)>\n\
         \x20      --offline-mode <dealer|ot (default dealer)>\n\
         \x20      --kernel <scalar|bitsliced (default bitsliced)>\n\
         \x20      --transport <memory|tcp (default memory)>\n\
         \x20      --factory-threads <f=0 (inline)> --pool-depth <d=0 (default 4)>\n\
         \x20      --pool-backpressure <block|fail-fast (default block)>\n\
         \x20      --schedule <dense|sparse (default dense)> --quick",
        experiments::ALL.join(" | ")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // --help wins over everything else, even invalid flags (same
    // semantics as dp_triangles).
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return;
    }
    let (opts, cmds) = match Options::parse(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            std::process::exit(2);
        }
    };
    if opts.help {
        println!("{}", usage());
        return;
    }
    if cmds.is_empty() {
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    let expanded: Vec<&str> = if cmds.iter().any(|c| c == "all") {
        experiments::ALL.to_vec()
    } else {
        cmds.iter().map(String::as_str).collect()
    };
    println!(
        "# CARGO reproduction experiments (n={}, trials={}, seed={}, out={})",
        opts.n,
        opts.trials,
        opts.seed,
        opts.out_dir.display()
    );
    for cmd in expanded {
        let start = std::time::Instant::now();
        match experiments::run(cmd, &opts) {
            Ok(tables) => {
                eprintln!(
                    "[{cmd}] done in {:.1}s ({} tables, CSVs in {})",
                    start.elapsed().as_secs_f64(),
                    tables.len(),
                    opts.out_dir.display()
                );
            }
            Err(e) => {
                eprintln!("error: {e}\n{}", usage());
                std::process::exit(2);
            }
        }
    }
}
