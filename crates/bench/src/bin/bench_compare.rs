//! Perf-regression gate: diffs a fresh `BENCH_secure_count.json`
//! against the committed baseline.
//!
//! For every `(n, threads, batch, kernel, transport, pool, schedule)`
//! row present in **both** reports:
//!
//! * `bytes_per_triple` must match exactly — the protocol's
//!   communication cost is deterministic, so any drift is a protocol
//!   change, not noise;
//! * `ns_per_triple` must be within `±tolerance` (relative; default
//!   20%) of the baseline — wall-clock regression gate. Both sides'
//!   `ns_per_triple` are **medians** (of the `--repeat` samples
//!   `bench_offline` takes); the persisted IQR column is displayed as
//!   the noise bar the verdict should be read against.
//!
//! Rows present on only one side are reported but do not fail the
//! gate (sweeps may grow or shrink). Exit code 1 on any violation.
//! The current report's `peak_rss_mb` column is displayed for the
//! reader (the large-graph smoke bounds it with `ulimit -v` instead of
//! a tolerance — high-water marks vary with allocator and thread
//! count, wall-clock-style gating would flake).
//!
//! ```text
//! usage: bench_compare <baseline.json> <current.json> [--tolerance 0.20]
//! ```

use cargo_bench::baseline::BenchReport;
use std::path::PathBuf;

fn usage() -> String {
    "usage: bench_compare <baseline.json> <current.json> [--tolerance 0.20]".to_string()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return;
    }
    let mut tolerance = 0.20f64;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--tolerance needs a float\n{}", usage());
                        std::process::exit(2);
                    });
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}\n{}", usage());
                std::process::exit(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    let baseline = BenchReport::read(&paths[0]).unwrap_or_else(|e| {
        eprintln!("baseline: {e}");
        std::process::exit(2);
    });
    let current = BenchReport::read(&paths[1]).unwrap_or_else(|e| {
        eprintln!("current: {e}");
        std::process::exit(2);
    });
    if baseline.bench != current.bench {
        eprintln!(
            "bench mismatch: baseline {:?} vs current {:?}",
            baseline.bench, current.bench
        );
        std::process::exit(1);
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    println!(
        "| n | threads | batch | kernel | transport | pool | schedule | base ns/T | cur ns/T | cur IQR | delta | bytes/T | peak MB | verdict |\n\
         |---|---------|-------|--------|-----------|------|----------|-----------|----------|---------|-------|---------|---------|---------|"
    );
    for cur in &current.rows {
        let Some(base) = baseline.find(
            cur.n,
            cur.threads,
            cur.batch,
            &cur.kernel,
            &cur.transport,
            &cur.pool,
            &cur.schedule,
        ) else {
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | — | {:.2} | {:.2} | — | {:.1} | {:.1} | NEW (not gated) |",
                cur.n, cur.threads, cur.batch, cur.kernel, cur.transport, cur.pool, cur.schedule,
                cur.ns_per_triple, cur.iqr_ns, cur.bytes_per_triple, cur.peak_rss_mb
            );
            continue;
        };
        compared += 1;
        // Median vs median: the persisted ns/T is already the median
        // of the sweep's repeats, so a single outlier run cannot trip
        // (or mask) the gate.
        let delta = (cur.ns_per_triple - base.ns_per_triple) / base.ns_per_triple;
        let bytes_ok = (cur.bytes_per_triple - base.bytes_per_triple).abs() < 1e-9
            && cur.triples == base.triples;
        let time_ok = delta.abs() <= tolerance;
        let verdict = match (bytes_ok, time_ok) {
            (true, true) => "PASS",
            (false, _) => "FAIL (cost model drifted)",
            (_, false) => "FAIL (time regressed)",
        };
        if !(bytes_ok && time_ok) {
            failures += 1;
        }
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.2} | {:.2} | {:.2} | {:+.1}% | {:.1} | {:.1} | {verdict} |",
            cur.n,
            cur.threads,
            cur.batch,
            cur.kernel,
            cur.transport,
            cur.pool,
            cur.schedule,
            base.ns_per_triple,
            cur.ns_per_triple,
            cur.iqr_ns,
            delta * 100.0,
            cur.bytes_per_triple,
            cur.peak_rss_mb
        );
    }
    for base in &baseline.rows {
        if current
            .find(
                base.n,
                base.threads,
                base.batch,
                &base.kernel,
                &base.transport,
                &base.pool,
                &base.schedule,
            )
            .is_none()
        {
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {:.2} | — | — | — | — | — | MISSING (not gated) |",
                base.n, base.threads, base.batch, base.kernel, base.transport, base.pool,
                base.schedule, base.ns_per_triple
            );
        }
    }
    println!(
        "\n{compared} rows compared, {failures} failures (tolerance ±{:.0}%)",
        tolerance * 100.0
    );
    if compared == 0 {
        eprintln!("error: no overlapping rows between the two reports");
        std::process::exit(1);
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
