//! Machine-readable bench baselines (`BENCH_secure_count.json`).
//!
//! The criterion shim prints trend-only timings to stdout; regression
//! gating needs numbers a program can diff. This module defines the
//! tiny JSON schema the `bench_secure_count` binary emits and the
//! `bench_compare` binary gates on:
//!
//! ```json
//! {
//!   "bench": "secure_count",
//!   "rows": [
//!     {"n": 200, "threads": 1, "batch": 64, "kernel": "bitsliced",
//!      "transport": "memory", "pool": "inline", "schedule": "dense",
//!      "triples": 1313400,
//!      "ns_per_triple": 55.1, "bytes_per_triple": 48.0, "iqr_ns": 1.2}
//!   ]
//! }
//! ```
//!
//! No serde in the approved dependency set, so serialisation is
//! hand-rolled — the parser accepts exactly the subset the writer
//! produces (flat objects of numeric fields inside one `rows` array)
//! and is pinned by round-trip tests.

use std::path::Path;

/// One measured sweep point of the secure-count bench.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Users (matrix dimension).
    pub n: usize,
    /// Worker threads.
    pub threads: usize,
    /// `k`-loop batch size.
    pub batch: usize,
    /// Variant label: the Count kernel (`scalar`/`bitsliced`) for the
    /// count sweeps, or the measured operation for `bench_micro`.
    /// `"-"` when a report predates the column (parser default).
    pub kernel: String,
    /// Wire the measured run's openings travelled over: `"memory"`
    /// (in-process; also what legacy reports without the column parse
    /// as — their rows were all in-process) or `"tcp"` (the sharded
    /// runtime over loopback sockets, `BENCH_transport.json`).
    pub transport: String,
    /// Where the offline phase ran: `"inline"` (on the query path —
    /// also what legacy reports without the column parse as) or a
    /// `"pool/t{threads}d{depth}"` triple-factory grid point
    /// (`bench_offline`).
    pub pool: String,
    /// Count schedule the row measured: `"dense"` (the fully-oblivious
    /// cube — also what legacy reports without the column parse as;
    /// every pre-column row was a dense run) or `"sparse"` (the
    /// candidate-driven walk, `BENCH_sparse.json`).
    pub schedule: String,
    /// Triples evaluated (`C(n, 3)`).
    pub triples: u64,
    /// Median wall-clock nanoseconds per triple.
    pub ns_per_triple: f64,
    /// Online server↔server bytes per triple (deterministic — exactly
    /// 48 for the exact count: 6 ring elements of 8 bytes).
    pub bytes_per_triple: f64,
    /// Interquartile range of the per-triple nanoseconds across the
    /// measured repeats — the noise bar a reader (and the compare
    /// gate's tolerance choice) should judge the median against.
    /// `0.0` on legacy reports that predate the column.
    pub iqr_ns: f64,
    /// Peak resident set size (VmHWM) of the bench process in MB at
    /// the end of this row's sweep point — the memory evidence behind
    /// the streamed sparse schedule's O(chunk) claim. A process-wide
    /// high-water mark, so only its *final* value per process is a
    /// bound; monotone across rows by construction. `0.0` on legacy
    /// reports that predate the column and on platforms without
    /// `/proc/self/status`.
    pub peak_rss_mb: f64,
}

impl BenchRow {
    /// The `(n, threads, batch, kernel, transport, pool, schedule)`
    /// identity used to match rows across reports.
    pub fn key(&self) -> (usize, usize, usize, &str, &str, &str, &str) {
        (
            self.n,
            self.threads,
            self.batch,
            &self.kernel,
            &self.transport,
            &self.pool,
            &self.schedule,
        )
    }
}

/// A full bench report: named sweep, one row per parameter point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// Bench identifier (`secure_count`).
    pub bench: String,
    /// Measured rows.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// Finds the row for
    /// `(n, threads, batch, kernel, transport, pool, schedule)`.
    #[allow(clippy::too_many_arguments)]
    pub fn find(
        &self,
        n: usize,
        threads: usize,
        batch: usize,
        kernel: &str,
        transport: &str,
        pool: &str,
        schedule: &str,
    ) -> Option<&BenchRow> {
        self.rows
            .iter()
            .find(|r| r.key() == (n, threads, batch, kernel, transport, pool, schedule))
    }

    /// Serialises to the canonical JSON layout (one row per line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", self.bench));
        out.push_str("  \"rows\": [\n");
        for (idx, r) in self.rows.iter().enumerate() {
            let comma = if idx + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"n\": {}, \"threads\": {}, \"batch\": {}, \"kernel\": \"{}\", \
                 \"transport\": \"{}\", \"pool\": \"{}\", \"schedule\": \"{}\", \
                 \"triples\": {}, \
                 \"ns_per_triple\": {:.3}, \"bytes_per_triple\": {:.3}, \
                 \"iqr_ns\": {:.3}, \"peak_rss_mb\": {:.3}}}{comma}\n",
                r.n, r.threads, r.batch, r.kernel, r.transport, r.pool, r.schedule, r.triples,
                r.ns_per_triple, r.bytes_per_triple, r.iqr_ns, r.peak_rss_mb
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the canonical layout back. Tolerant of whitespace and of
    /// missing newer columns (`kernel`, `transport`, `pool`, `iqr_ns`
    /// default); the numeric core keys are mandatory.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let bench = extract_string(text, "bench")?;
        let rows_start = text
            .find("\"rows\"")
            .ok_or_else(|| "missing \"rows\" array".to_string())?;
        let mut rows = Vec::new();
        let mut rest = &text[rows_start..];
        // Each row object starts at '{' after the array opener.
        let array_open = rest.find('[').ok_or("rows is not an array")?;
        rest = &rest[array_open + 1..];
        while let Some(obj_start) = rest.find('{') {
            // Stop once the array closes before the next object (row
            // objects contain no nested braces).
            if rest.find(']').is_some_and(|close| close < obj_start) {
                break;
            }
            let obj_end = rest[obj_start..]
                .find('}')
                .ok_or("unterminated row object")?
                + obj_start;
            let obj = &rest[obj_start..=obj_end];
            rows.push(BenchRow {
                n: extract_number(obj, "n")? as usize,
                threads: extract_number(obj, "threads")? as usize,
                batch: extract_number(obj, "batch")? as usize,
                kernel: extract_string(obj, "kernel").unwrap_or_else(|_| "-".to_string()),
                transport: extract_string(obj, "transport")
                    .unwrap_or_else(|_| "memory".to_string()),
                pool: extract_string(obj, "pool").unwrap_or_else(|_| "inline".to_string()),
                schedule: extract_string(obj, "schedule")
                    .unwrap_or_else(|_| "dense".to_string()),
                triples: extract_number(obj, "triples")? as u64,
                ns_per_triple: extract_number(obj, "ns_per_triple")?,
                bytes_per_triple: extract_number(obj, "bytes_per_triple")?,
                iqr_ns: extract_number(obj, "iqr_ns").unwrap_or(0.0),
                peak_rss_mb: extract_number(obj, "peak_rss_mb").unwrap_or(0.0),
            });
            rest = &rest[obj_end + 1..];
        }
        Ok(BenchReport { bench, rows })
    }

    /// Writes the report to `path` (creating parent directories).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a report from `path`.
    pub fn read(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        BenchReport::from_json(&text)
    }
}

/// Extracts `"key": "value"` from `text`.
fn extract_string(text: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat).ok_or_else(|| format!("missing key {key}"))?;
    let rest = &text[at + pat.len()..];
    let colon = rest.find(':').ok_or_else(|| format!("{key}: no colon"))?;
    let rest = rest[colon + 1..].trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| format!("{key}: not a string"))?;
    let end = rest.find('"').ok_or_else(|| format!("{key}: unterminated"))?;
    Ok(rest[..end].to_string())
}

/// Extracts `"key": <number>` from `text` (integer or float).
fn extract_number(text: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat).ok_or_else(|| format!("missing key {key}"))?;
    let rest = &text[at + pat.len()..];
    let colon = rest.find(':').ok_or_else(|| format!("{key}: no colon"))?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("{key}: {e} in {:?}", &rest[..end.min(20)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            bench: "secure_count".into(),
            rows: vec![
                BenchRow {
                    n: 200,
                    threads: 1,
                    batch: 64,
                    kernel: "bitsliced".into(),
                    transport: "memory".into(),
                    pool: "inline".into(),
                    schedule: "dense".into(),
                    triples: 1_313_400,
                    ns_per_triple: 55.125,
                    bytes_per_triple: 48.0,
                    iqr_ns: 1.25,
                    peak_rss_mb: 123.5,
                },
                BenchRow {
                    n: 600,
                    threads: 4,
                    batch: 64,
                    kernel: "scalar".into(),
                    transport: "tcp".into(),
                    pool: "pool/t2d4".into(),
                    schedule: "sparse".into(),
                    triples: 35_820_200,
                    ns_per_triple: 12.5,
                    bytes_per_triple: 48.0,
                    iqr_ns: 0.0,
                    peak_rss_mb: 0.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn find_matches_on_the_full_key() {
        let r = sample();
        assert!(r
            .find(600, 4, 64, "scalar", "tcp", "pool/t2d4", "sparse")
            .is_some());
        assert!(r
            .find(600, 2, 64, "scalar", "tcp", "pool/t2d4", "sparse")
            .is_none());
        assert!(
            r.find(600, 4, 64, "bitsliced", "tcp", "pool/t2d4", "sparse")
                .is_none(),
            "kernel is keyed"
        );
        assert!(
            r.find(600, 4, 64, "scalar", "memory", "pool/t2d4", "sparse")
                .is_none(),
            "transport is keyed"
        );
        assert!(
            r.find(600, 4, 64, "scalar", "tcp", "inline", "sparse")
                .is_none(),
            "pool is keyed"
        );
        assert!(
            r.find(600, 4, 64, "scalar", "tcp", "pool/t2d4", "dense")
                .is_none(),
            "schedule is keyed"
        );
        assert_eq!(
            r.find(200, 1, 64, "bitsliced", "memory", "inline", "dense")
                .unwrap()
                .triples,
            1_313_400
        );
    }

    #[test]
    fn kernel_and_transport_columns_default_when_absent() {
        // Reports written before the newer columns must still parse:
        // every legacy row was an in-process run (transport "memory")
        // with preprocessing on the query path (pool "inline") and a
        // single-shot timing (iqr 0).
        let legacy = "{\n  \"bench\": \"x\",\n  \"rows\": [\n    \
            {\"n\": 10, \"threads\": 1, \"batch\": 2, \"triples\": 5, \
            \"ns_per_triple\": 1.0, \"bytes_per_triple\": 48.0}\n  ]\n}\n";
        let r = BenchReport::from_json(legacy).unwrap();
        assert_eq!(r.rows[0].kernel, "-");
        assert_eq!(r.rows[0].transport, "memory");
        assert_eq!(r.rows[0].pool, "inline");
        assert_eq!(r.rows[0].schedule, "dense", "legacy rows were all dense");
        assert_eq!(r.rows[0].iqr_ns, 0.0);
        assert_eq!(r.rows[0].peak_rss_mb, 0.0, "legacy rows have no RSS probe");
    }

    #[test]
    fn empty_rows_round_trip() {
        let r = BenchReport {
            bench: "x".into(),
            rows: vec![],
        };
        assert_eq!(BenchReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(BenchReport::from_json("not json").is_err());
        assert!(BenchReport::from_json("{\"bench\": \"x\"}").is_err());
    }

    #[test]
    fn write_and_read_round_trip_through_disk() {
        let r = sample();
        let dir = std::env::temp_dir().join("cargo_bench_baseline_test");
        let path = dir.join("BENCH_secure_count.json");
        r.write(&path).unwrap();
        assert_eq!(BenchReport::read(&path).unwrap(), r);
        std::fs::remove_file(&path).ok();
    }
}
