//! Ablation: the paper's one-shot three-value Multiplication-Group
//! protocol vs composing two Beaver two-value multiplications.
//!
//! Both compute `a·b·c` over shares; the MG protocol uses one opening
//! round of 3 elements, the Beaver composition needs two *sequential*
//! rounds (the second multiplication consumes the first's output), so
//! on a real network the MG variant halves the latency per triple.
//! This bench shows the compute-side comparison.

use cargo_mpc::{beaver_mul, mul3, Dealer, NetStats, Ring64};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_triple_product(c: &mut Criterion) {
    let mut g = c.benchmark_group("triple_product");
    g.throughput(Throughput::Elements(1));

    g.bench_function("mul_group_one_shot", |b| {
        let mut dealer = Dealer::new(1);
        let sa = dealer.share(Ring64::ONE);
        let sb = dealer.share(Ring64::ONE);
        let sc = dealer.share(Ring64::ZERO);
        b.iter(|| {
            let mg = dealer.mul_group();
            let mut net = NetStats::new();
            black_box(mul3(
                (sa.s1, sa.s2),
                (sb.s1, sb.s2),
                (sc.s1, sc.s2),
                mg,
                &mut net,
            ))
        })
    });

    g.bench_function("two_beaver_composition", |b| {
        let mut dealer = Dealer::new(2);
        let sa = dealer.share(Ring64::ONE);
        let sb = dealer.share(Ring64::ONE);
        let sc = dealer.share(Ring64::ZERO);
        b.iter(|| {
            let t1 = dealer.beaver();
            let t2 = dealer.beaver();
            let mut net = NetStats::new();
            let ab = beaver_mul((sa.s1, sa.s2), (sb.s1, sb.s2), t1, &mut net);
            black_box(beaver_mul(ab, (sc.s1, sc.s2), t2, &mut net))
        })
    });

    g.finish();
}

fn bench_correctness_overhead(c: &mut Criterion) {
    // Baseline: the plaintext product, to show the MPC markup.
    let mut g = c.benchmark_group("plain_product");
    g.throughput(Throughput::Elements(1));
    g.bench_function("u64_triple_mul", |b| {
        let (x, y, z) = (3u64, 5u64, 7u64);
        b.iter(|| black_box(black_box(x) * black_box(y) * black_box(z)))
    });
    g.finish();
}

criterion_group!(benches, bench_triple_product, bench_correctness_overhead);
criterion_main!(benches);
