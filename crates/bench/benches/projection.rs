//! Projection ablation: similarity-based `Project` (Algorithm 3) vs
//! random `GraphProjection`, in both runtime and triangles preserved.

use cargo_baselines::random_project_matrix;
use cargo_core::{estimate_max_degree, project_matrix};
use cargo_graph::count_triangles_matrix;
use cargo_graph::generators::presets::SnapDataset;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_projection_runtime(c: &mut Criterion) {
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let g = full.induced_prefix(1_000);
    let matrix = g.to_bit_matrix();
    let degrees = g.degrees();
    let mut rng = StdRng::seed_from_u64(1);
    let noisy = estimate_max_degree(&degrees, 0.2, &mut rng).noisy_degrees;

    let mut group = c.benchmark_group("projection_runtime");
    for theta in [25usize, 100, 400] {
        group.bench_with_input(
            BenchmarkId::new("similarity", theta),
            &theta,
            |b, &theta| b.iter(|| black_box(project_matrix(&matrix, &degrees, &noisy, theta))),
        );
        group.bench_with_input(BenchmarkId::new("random", theta), &theta, |b, &theta| {
            let mut prng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(random_project_matrix(&matrix, theta, &mut prng)))
        });
    }
    group.finish();
}

fn bench_projection_quality(c: &mut Criterion) {
    // Not a speed benchmark: measures triangles preserved per run so
    // `cargo bench` output records the ablation result alongside times.
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let g = full.induced_prefix(800);
    let matrix = g.to_bit_matrix();
    let degrees = g.degrees();
    let mut rng = StdRng::seed_from_u64(3);
    let noisy = estimate_max_degree(&degrees, 0.2, &mut rng).noisy_degrees;
    let theta = 50;
    let before = count_triangles_matrix(&matrix);
    let sim = count_triangles_matrix(&project_matrix(&matrix, &degrees, &noisy, theta).matrix);
    let mut prng = StdRng::seed_from_u64(4);
    let rnd = count_triangles_matrix(&random_project_matrix(&matrix, theta, &mut prng));
    println!(
        "[projection_quality] theta={theta}: before={before} similarity={sim} random={rnd}"
    );
    let mut group = c.benchmark_group("projection_quality_counting");
    group.bench_function("count_after_projection", |b| {
        let m = project_matrix(&matrix, &degrees, &noisy, theta).matrix;
        b.iter(|| black_box(count_triangles_matrix(&m)))
    });
    group.finish();
}

criterion_group!(benches, bench_projection_runtime, bench_projection_quality);
criterion_main!(benches);
