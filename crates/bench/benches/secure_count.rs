//! The O(n³) secure count: scaling in n, thread count, and batch size
//! (the `CountScheduler` sweep axes), plus the plaintext counters for
//! reference (the "crypto markup"). The machine-readable counterpart
//! of the thread/batch sweep is the `bench_secure_count` binary, which
//! persists `BENCH_secure_count.json` for the `bench_compare` gate.

use cargo_core::{
    secure_triangle_count, secure_triangle_count_batched, secure_triangle_count_sampled,
};
use cargo_graph::generators::presets::SnapDataset;
use cargo_graph::{count_triangles, count_triangles_matrix};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_secure_count_scaling(c: &mut Criterion) {
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let mut g = c.benchmark_group("secure_count");
    g.sample_size(10);
    for n in [100usize, 200, 400] {
        let m = full.induced_prefix(n).to_bit_matrix();
        g.bench_with_input(BenchmarkId::new("n", n), &m, |b, m| {
            b.iter(|| black_box(secure_triangle_count(m, 1, 0)))
        });
    }
    g.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let m = full.induced_prefix(300).to_bit_matrix();
    let mut g = c.benchmark_group("secure_count_threads");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(secure_triangle_count(&m, 1, t)))
        });
    }
    g.finish();
}

fn bench_batch_scaling(c: &mut Criterion) {
    // The scheduler's other axis: triples per round / PRG block. Shares
    // are identical across the sweep; only round granularity and
    // per-call overhead move.
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let m = full.induced_prefix(300).to_bit_matrix();
    let mut g = c.benchmark_group("secure_count_batch");
    g.sample_size(10);
    for batch in [1usize, 8, 64, 512] {
        g.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            b.iter(|| black_box(secure_triangle_count_batched(&m, 1, 1, batch)))
        });
    }
    g.finish();
}

fn bench_thread_batch_grid(c: &mut Criterion) {
    // The joint grid the JSON baseline records: threads × batch at one n.
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let m = full.induced_prefix(200).to_bit_matrix();
    let mut g = c.benchmark_group("secure_count_grid_n200");
    g.sample_size(10);
    for threads in [1usize, 4] {
        for batch in [1usize, 64] {
            g.bench_with_input(
                BenchmarkId::new("threads_batch", format!("{threads}x{batch}")),
                &(threads, batch),
                |b, &(t, batch)| b.iter(|| black_box(secure_triangle_count_batched(&m, 1, t, batch))),
            );
        }
    }
    g.finish();
}

fn bench_plaintext_counters(c: &mut Criterion) {
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let sub = full.induced_prefix(400);
    let m = sub.to_bit_matrix();
    let mut g = c.benchmark_group("plaintext_count");
    g.bench_function("edge_iterator_n400", |b| {
        b.iter(|| black_box(count_triangles(&sub)))
    });
    g.bench_function("matrix_triple_loop_n400", |b| {
        b.iter(|| black_box(count_triangles_matrix(&m)))
    });
    g.finish();
}

fn bench_sampled_count(c: &mut Criterion) {
    // The O(n^3)-cost knob: sampling rate q cuts evaluated triples to
    // q-fraction (noise grows by 1/q; see count_sampled docs).
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let m = full.induced_prefix(400).to_bit_matrix();
    let mut g = c.benchmark_group("sampled_count_n400");
    g.sample_size(10);
    for rate in [1.0f64, 0.25, 0.05] {
        g.bench_with_input(
            BenchmarkId::new("rate", format!("{rate}")),
            &rate,
            |b, &rate| b.iter(|| black_box(secure_triangle_count_sampled(&m, 1, rate, 0))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_secure_count_scaling,
    bench_thread_scaling,
    bench_batch_scaling,
    bench_thread_batch_grid,
    bench_plaintext_counters,
    bench_sampled_count
);
criterion_main!(benches);
