//! Microbenchmarks of the ring and PRG layer: the per-triple cost
//! floor of the secure count.

use cargo_mpc::{Dealer, Ring64, SplitMix64};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_ring_arithmetic(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring");
    g.throughput(Throughput::Elements(1));
    g.bench_function("add", |b| {
        let (x, y) = (Ring64(0x1234_5678_9ABC_DEF0), Ring64(0x0FED_CBA9_8765_4321));
        b.iter(|| black_box(black_box(x) + black_box(y)))
    });
    g.bench_function("mul", |b| {
        let (x, y) = (Ring64(0x1234_5678_9ABC_DEF0), Ring64(0x0FED_CBA9_8765_4321));
        b.iter(|| black_box(black_box(x) * black_box(y)))
    });
    g.finish();
}

fn bench_prg(c: &mut Criterion) {
    let mut g = c.benchmark_group("prg");
    g.throughput(Throughput::Elements(1));
    g.bench_function("splitmix64_next", |b| {
        let mut rng = SplitMix64::new(42);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.finish();
}

fn bench_dealer(c: &mut Criterion) {
    let mut g = c.benchmark_group("dealer");
    g.throughput(Throughput::Elements(1));
    g.bench_function("share", |b| {
        let mut d = Dealer::new(1);
        b.iter(|| black_box(d.share(Ring64(7))))
    });
    g.bench_function("beaver_triple", |b| {
        let mut d = Dealer::new(2);
        b.iter(|| black_box(d.beaver()))
    });
    g.bench_function("mul_group", |b| {
        let mut d = Dealer::new(3);
        b.iter(|| black_box(d.mul_group()))
    });
    g.finish();
}

criterion_group!(benches, bench_ring_arithmetic, bench_prg, bench_dealer);
criterion_main!(benches);
