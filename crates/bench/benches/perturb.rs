//! Perturbation ablations: distributed Gamma noise (the paper's
//! Algorithm 5) vs the Cryptε-style "two Laplace instances" design it
//! improves on, plus sampler throughput.
//!
//! The utility ablation is printed once: Cryptε adds two independent
//! `Lap(Δ/ε)` draws (each server one), doubling the variance; CARGO's
//! distributed noise reconstructs exactly one `Lap(Δ/ε)`.

use cargo_dp::{partial_noise, sample_gamma, sample_laplace, DistributedLaplace};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("samplers");
    g.bench_function("laplace", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(sample_laplace(&mut rng, 3.0)))
    });
    g.bench_function("gamma_shape_ge_1", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(sample_gamma(&mut rng, 2.5, 3.0)))
    });
    g.bench_function("gamma_tiny_shape", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(sample_gamma(&mut rng, 1.0 / 2000.0, 3.0)))
    });
    g.bench_function("partial_noise_n2000", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(partial_noise(&mut rng, 2000, 3.0)))
    });
    g.finish();
}

fn bench_distributed_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("perturb_round");
    g.sample_size(20);
    for n in [500usize, 2000] {
        g.bench_with_input(BenchmarkId::new("all_users", n), &n, |b, &n| {
            let dist = DistributedLaplace::new(n, 1000.0, 1.8);
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| black_box(dist.sample_all(&mut rng)))
        });
    }
    g.finish();
}

fn report_variance_ablation(c: &mut Criterion) {
    // Measured variance: CARGO's aggregate vs Cryptε's two-Laplace.
    let (delta, eps, n) = (1000.0, 1.8, 2000);
    let mut rng = StdRng::seed_from_u64(6);
    let trials = 4000;
    let dist = DistributedLaplace::new(n, delta, eps);
    let var_cargo: f64 = (0..trials)
        .map(|_| {
            let s: f64 = dist.sample_all(&mut rng).iter().sum();
            s * s
        })
        .sum::<f64>()
        / trials as f64;
    let var_crypte: f64 = (0..trials)
        .map(|_| {
            let s = sample_laplace(&mut rng, delta / eps) + sample_laplace(&mut rng, delta / eps);
            s * s
        })
        .sum::<f64>()
        / trials as f64;
    println!(
        "[perturb_ablation] aggregate variance: CARGO={var_cargo:.0} Crypte-style={var_crypte:.0} (ratio {:.2}, theory 2.0)",
        var_crypte / var_cargo
    );
    // Keep criterion happy with a trivial measurable.
    let mut g = c.benchmark_group("perturb_ablation_marker");
    g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    g.finish();
}

criterion_group!(
    benches,
    bench_samplers,
    bench_distributed_round,
    report_variance_ablation
);
criterion_main!(benches);
