//! End-to-end protocol timing: the Fig. 11/12 comparison as a
//! Criterion bench (CentralLap vs Local2Rounds vs CARGO at one scale).

use cargo_baselines::{
    central_lap_triangles, local2rounds_triangles, local_rr_triangles, Local2RoundsConfig,
};
use cargo_core::{CargoConfig, CargoSystem};
use cargo_graph::generators::presets::SnapDataset;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_protocols(c: &mut Criterion) {
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let g = full.induced_prefix(500);
    let eps = 2.0;

    let mut group = c.benchmark_group("protocols_n500");
    group.sample_size(10);
    group.bench_function("central_lap", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(central_lap_triangles(&g, eps, &mut rng)))
    });
    group.bench_function("local_rr_one_round", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(local_rr_triangles(&g, eps, &mut rng)))
    });
    group.bench_function("local2rounds", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            black_box(local2rounds_triangles(
                &g,
                Local2RoundsConfig::paper_split(eps),
                &mut rng,
            ))
        })
    });
    group.bench_function("cargo_full_pipeline", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(CargoSystem::new(CargoConfig::new(eps).with_seed(seed)).run(&g))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
