//! # cargo-testutil — shared fixtures for the CARGO test suites
//!
//! Everything the integration suites (and future PRs) need to write
//! deterministic, statistically sound tests without re-rolling their
//! own scaffolding:
//!
//! * [`graphs`] — seeded fixture graphs with **golden triangle
//!   counts**: hand-countable micro graphs plus generator-backed
//!   fixtures whose counts are locked in as regression values.
//! * [`stats`] — statistical assertion helpers for DP noise:
//!   mean/variance tolerance checks sized by the CLT, and a sign test
//!   for unbiasedness.
//! * [`sharing`] — secret-sharing round-trip helpers: share/reconstruct
//!   identity over adversarially chosen and random ring values.
//!
//! Everything here is deterministic: fixtures take explicit seeds and
//! all helpers are pure functions of their inputs.

pub mod graphs;
pub mod sharing;
pub mod stats;

pub use graphs::{
    golden_fixtures, k4, path4, triangle, two_triangles_sharing_an_edge, GraphFixture,
};
pub use sharing::{assert_share_roundtrip, assert_share_vec_roundtrip, ring_test_values};
pub use stats::{
    assert_mean_close, assert_sign_balanced, assert_variance_close, mean, sample_stats, variance,
};
