//! Statistical assertion helpers for DP noise tests.
//!
//! All tolerances are sized from the sample count via the CLT, so
//! callers state the *distribution's* parameters and a z-budget rather
//! than hand-tuned epsilons. With the default `z = 6` and the fixed
//! seeds used across the workspace, spurious failures are effectively
//! impossible (p < 1e-8 even across hundreds of assertions) while real
//! sampler regressions — a wrong scale, a lost sign, a shifted mean —
//! sit tens of sigmas out.

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty sample");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n-1) sample variance.
pub fn variance(xs: &[f64]) -> f64 {
    assert!(xs.len() >= 2, "variance needs at least 2 samples");
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// `(mean, variance)` in one pass over the sample.
pub fn sample_stats(xs: &[f64]) -> (f64, f64) {
    (mean(xs), variance(xs))
}

/// Default z-score budget for all statistical assertions.
pub const DEFAULT_Z: f64 = 6.0;

/// Asserts the sample mean is within `z` standard errors of
/// `expected_mean`, where the standard error is derived from the
/// distribution's own `expected_var`.
///
/// # Panics
/// With a diagnostic naming `what`, the observed and expected means,
/// and the allowed band.
pub fn assert_mean_close(what: &str, xs: &[f64], expected_mean: f64, expected_var: f64, z: f64) {
    assert!(expected_var >= 0.0 && z > 0.0);
    let m = mean(xs);
    let se = (expected_var / xs.len() as f64).sqrt();
    // Guard against a zero-variance target (e.g. a degenerate
    // distribution): fall back to exact comparison with float slack.
    let tol = if se > 0.0 { z * se } else { 1e-12 };
    assert!(
        (m - expected_mean).abs() <= tol,
        "{what}: sample mean {m:.6} outside {expected_mean:.6} ± {tol:.6} \
         (n = {}, z = {z})",
        xs.len()
    );
}

/// Asserts the sample variance is within a CLT-sized band of
/// `expected_var`.
///
/// The variance of the sample variance is approximated by the normal
/// formula `2σ⁴/(n−1)` inflated by `kurtosis_factor` (pass e.g. 3.0
/// for heavy-tailed distributions like Laplace whose excess kurtosis
/// is 3, and more for Gamma with small shape).
pub fn assert_variance_close(what: &str, xs: &[f64], expected_var: f64, kurtosis_factor: f64, z: f64) {
    assert!(expected_var > 0.0 && kurtosis_factor >= 1.0 && z > 0.0);
    let v = variance(xs);
    let se = (kurtosis_factor * 2.0 * expected_var * expected_var / (xs.len() - 1) as f64).sqrt();
    let tol = z * se;
    assert!(
        (v - expected_var).abs() <= tol,
        "{what}: sample variance {v:.6} outside {expected_var:.6} ± {tol:.6} \
         (n = {}, z = {z})",
        xs.len()
    );
}

/// Sign test for unbiasedness of a symmetric noise distribution:
/// asserts the count of strictly positive draws is within `z` standard
/// deviations of the Binomial(n, 1/2) expectation. Zero draws are
/// discarded (relevant for discrete samplers).
pub fn assert_sign_balanced(what: &str, xs: &[f64], z: f64) {
    let nonzero: Vec<f64> = xs.iter().copied().filter(|&x| x != 0.0).collect();
    let n = nonzero.len();
    assert!(
        n >= 100,
        "{what}: sign test needs >= 100 non-zero draws, got {n}"
    );
    let positives = nonzero.iter().filter(|&&x| x > 0.0).count() as f64;
    let expected = n as f64 / 2.0;
    let sd = (n as f64 * 0.25).sqrt();
    assert!(
        (positives - expected).abs() <= z * sd,
        "{what}: {positives} of {n} non-zero draws positive; expected {expected:.1} ± {:.1}",
        z * sd
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0f64..1.0)).collect()
    }

    #[test]
    fn uniform_passes_its_own_moments() {
        // U(-1, 1): mean 0, variance 1/3, no excess kurtosis.
        let xs = uniform_sample(50_000, 7);
        assert_mean_close("U(-1,1) mean", &xs, 0.0, 1.0 / 3.0, DEFAULT_Z);
        assert_variance_close("U(-1,1) var", &xs, 1.0 / 3.0, 1.0, DEFAULT_Z);
        assert_sign_balanced("U(-1,1) sign", &xs, DEFAULT_Z);
    }

    #[test]
    #[should_panic(expected = "sample mean")]
    fn shifted_mean_is_detected() {
        let xs: Vec<f64> = uniform_sample(50_000, 8).iter().map(|x| x + 0.1).collect();
        assert_mean_close("shifted", &xs, 0.0, 1.0 / 3.0, DEFAULT_Z);
    }

    #[test]
    #[should_panic(expected = "sample variance")]
    fn wrong_scale_is_detected() {
        let xs: Vec<f64> = uniform_sample(50_000, 9).iter().map(|x| x * 1.5).collect();
        assert_variance_close("scaled", &xs, 1.0 / 3.0, 1.0, DEFAULT_Z);
    }

    #[test]
    #[should_panic(expected = "non-zero draws positive")]
    fn skewed_signs_are_detected() {
        let xs: Vec<f64> = uniform_sample(50_000, 10)
            .iter()
            .map(|x| if *x > -0.2 { x.abs() } else { *x })
            .collect();
        assert_sign_balanced("skewed", &xs, DEFAULT_Z);
    }
}
