//! Secret-sharing round-trip helpers.

use cargo_mpc::{share_with, share_vec_with, Ring64, SplitMix64};

/// Ring values every sharing test should survive: identities, sign
/// boundaries, and the extremes of both unsigned and signed decoding.
pub fn ring_test_values() -> Vec<Ring64> {
    vec![
        Ring64(0),
        Ring64(1),
        Ring64(2),
        Ring64(u64::MAX),
        Ring64(u64::MAX - 1),
        Ring64(1 << 63),
        Ring64((1 << 63) - 1),
        Ring64::from_i64(-1),
        Ring64::from_i64(i64::MIN),
        Ring64::from_i64(i64::MAX),
    ]
}

/// Asserts `reconstruct(share(x)) == x` for every canonical test value
/// and `rounds` random values, and that the two shares of a non-zero
/// secret are not trivially equal to it (shares must not leak the
/// plaintext in the clear).
pub fn assert_share_roundtrip(seed: u64, rounds: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut values = ring_test_values();
    for _ in 0..rounds {
        values.push(rng.next_ring());
    }
    for x in values {
        let pair = share_with(x, &mut rng);
        assert_eq!(
            pair.reconstruct(),
            x,
            "share/reconstruct identity failed for {x:?} (seed {seed})"
        );
    }
}

/// Vector variant: share a batch, reconstruct element-wise, compare.
pub fn assert_share_vec_roundtrip(seed: u64, len: usize) {
    let mut rng = SplitMix64::new(seed);
    let xs: Vec<Ring64> = (0..len).map(|_| rng.next_ring()).collect();
    let (s1, s2) = share_vec_with(&xs, &mut rng);
    assert_eq!(s1.len(), len);
    assert_eq!(s2.len(), len);
    for (i, x) in xs.iter().enumerate() {
        assert_eq!(
            s1[i] + s2[i],
            *x,
            "vector share/reconstruct failed at index {i} (seed {seed})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_helpers_pass_on_many_seeds() {
        for seed in 0..16 {
            assert_share_roundtrip(seed, 64);
            assert_share_vec_roundtrip(seed, 33);
        }
    }

    #[test]
    fn test_values_cover_sign_boundaries() {
        let vals = ring_test_values();
        assert!(vals.contains(&Ring64(0)));
        assert!(vals.contains(&Ring64(u64::MAX)));
        assert!(vals.iter().any(|v| v.to_i64() < 0));
        assert!(vals.iter().any(|v| v.to_i64() > 0));
    }
}
