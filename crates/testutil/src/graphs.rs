//! Deterministic graph fixtures with golden triangle counts.

use cargo_graph::generators::{barabasi_albert, erdos_renyi, watts_strogatz};
use cargo_graph::Graph;

/// A named graph together with its known-correct triangle count.
pub struct GraphFixture {
    pub name: &'static str,
    pub graph: Graph,
    /// Golden value: for the micro fixtures this is counted by hand;
    /// for the generator fixtures it is locked in from the seed
    /// workspace bring-up and guards both the generators and the
    /// counting algorithms against silent drift.
    pub triangles: u64,
}

impl GraphFixture {
    fn new(name: &'static str, graph: Graph, triangles: u64) -> Self {
        GraphFixture {
            name,
            graph,
            triangles,
        }
    }
}

/// A single triangle on 3 nodes: the smallest non-trivial count.
pub fn triangle() -> Graph {
    Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).expect("valid fixture")
}

/// The complete graph on 4 nodes: C(4,3) = 4 triangles.
pub fn k4() -> Graph {
    Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).expect("valid fixture")
}

/// A path on 4 nodes: zero triangles, non-zero edges.
pub fn path4() -> Graph {
    Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).expect("valid fixture")
}

/// Two triangles sharing the edge (1, 2): tests that shared edges are
/// not double- or under-counted.
pub fn two_triangles_sharing_an_edge() -> Graph {
    Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).expect("valid fixture")
}

/// The fixed seed every generator-backed fixture uses.
pub const FIXTURE_SEED: u64 = 0xCA60;

/// The full golden fixture set: micro graphs (hand-counted) plus
/// seeded generator outputs (locked-in regression values).
///
/// The generator goldens are **hardcoded**, not recomputed: a
/// behavioural change in the generators, the RNG shim, or the triangle
/// counters fails loudly here rather than drifting silently. If you
/// change any of those deliberately, re-derive the constants with
/// `count_triangles` and update them in the same commit.
pub fn golden_fixtures() -> Vec<GraphFixture> {
    vec![
        GraphFixture::new("triangle", triangle(), 1),
        GraphFixture::new("k4", k4(), 4),
        GraphFixture::new("path4", path4(), 0),
        GraphFixture::new("two_shared", two_triangles_sharing_an_edge(), 2),
        GraphFixture::new("er_64", erdos_renyi(64, 0.15, FIXTURE_SEED), 74),
        GraphFixture::new("ba_64", barabasi_albert(64, 4, FIXTURE_SEED), 139),
        GraphFixture::new("ws_64", watts_strogatz(64, 6, 0.2, FIXTURE_SEED), 119),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cargo_graph::{count_triangles, count_triangles_matrix, count_triangles_node_iterator};

    #[test]
    fn micro_fixture_goldens_are_hand_verifiable() {
        assert_eq!(count_triangles(&triangle()), 1);
        assert_eq!(count_triangles(&k4()), 4);
        assert_eq!(count_triangles(&path4()), 0);
        assert_eq!(count_triangles(&two_triangles_sharing_an_edge()), 2);
    }

    #[test]
    fn all_counting_algorithms_agree_on_fixtures() {
        for f in golden_fixtures() {
            assert_eq!(count_triangles(&f.graph), f.triangles, "{}", f.name);
            assert_eq!(
                count_triangles_node_iterator(&f.graph),
                f.triangles,
                "{} (node iterator)",
                f.name
            );
            assert_eq!(
                count_triangles_matrix(&f.graph.to_bit_matrix()),
                f.triangles,
                "{} (matrix)",
                f.name
            );
        }
    }

    #[test]
    fn generator_fixtures_match_pinned_edge_counts() {
        // Second independent golden dimension: edge counts pin the
        // generators/RNG even where triangle counts could coincide.
        let pinned = [("er_64", 253usize), ("ba_64", 246), ("ws_64", 192)];
        let fixtures = golden_fixtures();
        for (name, edges) in pinned {
            let f = fixtures.iter().find(|f| f.name == name).unwrap();
            assert_eq!(f.graph.edge_count(), edges, "{name} edge count drifted");
        }
    }
}
