//! MPC playground: the cryptographic primitives, hands-on.
//!
//! ```text
//! cargo run --release --example mpc_playground
//! ```
//!
//! Walks through the building blocks of Section II-C / III-D at
//! human scale: sharing a secret, adding shares, Beaver 2-value
//! multiplication, and the paper's 3-value Multiplication-Group
//! protocol that powers the secure triangle count.

use cargo_mpc::{beaver_mul, mul3, reconstruct, Dealer, NetStats, Ring64};

fn main() {
    let mut dealer = Dealer::new(2024);

    // --- additive sharing ---
    let secret = Ring64::from_i64(-37);
    let pair = dealer.share(secret);
    println!("secret           : {}", secret.to_i64());
    println!("share for S1     : 0x{:016x}", pair.s1.to_u64());
    println!("share for S2     : 0x{:016x}", pair.s2.to_u64());
    println!("reconstructed    : {}", pair.reconstruct().to_i64());

    // --- addition is local ---
    let a = dealer.share(Ring64::new(1000));
    let b = dealer.share(Ring64::from_i64(-58));
    let sum = reconstruct(a.s1 + b.s1, a.s2 + b.s2);
    println!("\n1000 + (-58)     = {} (no communication)", sum.to_i64());

    // --- two-value multiplication: one Beaver triple, one round ---
    let mut net = NetStats::new();
    let x = dealer.share(Ring64::new(6));
    let y = dealer.share(Ring64::new(7));
    let triple = dealer.beaver();
    let (p1, p2) = beaver_mul((x.s1, x.s2), (y.s1, y.s2), triple, &mut net);
    println!("\n6 * 7            = {} ({net})", reconstruct(p1, p2).to_i64());

    // --- the paper's three-value multiplication ---
    // A triangle test: bits (a_ij, a_ik, a_jk) = (1, 1, 1).
    let mut net = NetStats::new();
    let bits = (Ring64::ONE, Ring64::ONE, Ring64::ONE);
    let sa = dealer.share(bits.0);
    let sb = dealer.share(bits.1);
    let sc = dealer.share(bits.2);
    let mg = dealer.mul_group();
    let (d1, d2) = mul3(
        (sa.s1, sa.s2),
        (sb.s1, sb.s2),
        (sc.s1, sc.s2),
        mg,
        &mut net,
    );
    println!(
        "\ntriangle predicate a_ij*a_ik*a_jk = {} ({net})",
        reconstruct(d1, d2).to_i64()
    );

    // One missing edge kills the product — and the servers can't tell
    // which case occurred from their shares.
    let mut net = NetStats::new();
    let sc0 = dealer.share(Ring64::ZERO); // a_jk = 0
    let mg = dealer.mul_group();
    let (d1, d2) = mul3(
        (sa.s1, sa.s2),
        (sb.s1, sb.s2),
        (sc0.s1, sc0.s2),
        mg,
        &mut net,
    );
    println!(
        "with a_jk = 0    : product = {}, S1's output share = 0x{:016x} (uniform-looking)",
        reconstruct(d1, d2).to_i64(),
        d1.to_u64()
    );
}
