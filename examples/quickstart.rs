//! Quickstart: run CARGO end to end on a small social graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Each node of the graph is a *user* who holds only her own adjacency
//! row; two simulated semi-honest servers compute a differentially
//! private triangle count without ever seeing an edge.

use cargo_core::{CargoConfig, CargoSystem};
use cargo_graph::generators::barabasi_albert;

fn main() {
    // A 1000-user scale-free graph (each user = one node).
    let graph = barabasi_albert(1_000, 8, 42);
    println!(
        "graph: {} users, {} friendships, d_max = {}",
        graph.n(),
        graph.edge_count(),
        graph.max_degree()
    );

    // Total privacy budget ε = 2, split 0.1/0.9 between the noisy-max-
    // degree round and the count perturbation (the paper's setting).
    let config = CargoConfig::new(2.0).with_seed(7);
    let output = CargoSystem::new(config).run(&graph);

    println!("\n--- CARGO run ---");
    println!("noisy max degree d'_max : {:.1}", output.d_max_noisy);
    println!("users truncated         : {}", output.truncated_users);
    println!("triangles (exact)       : {}", output.true_count);
    println!("triangles (post-projection): {}", output.projected_count);
    println!("released noisy count T' : {:.1}", output.noisy_count);
    let rel = (output.noisy_count - output.true_count as f64).abs() / output.true_count as f64;
    println!("relative error          : {:.4}", rel);

    println!("\n--- cost accounting ---");
    println!("server<->server traffic : {}", output.net);
    println!("user uploads            : {} ring elements", output.upload_elements);
    println!(
        "step times: Max {:?} | Project {:?} | Count {:?} ({}% of total) | Perturb {:?}",
        output.timings.max,
        output.timings.project,
        output.timings.count,
        (output.timings.count_fraction() * 100.0) as u32,
        output.timings.perturb
    );

    println!("\n--- privacy ledger ---");
    for (mechanism, eps) in &output.ledger {
        println!("  {mechanism}: eps = {eps}");
    }
}
