//! Deployment comparison: which trust model fits your application?
//!
//! ```text
//! cargo run --release --example deployment_comparison
//! ```
//!
//! Runs all four protocols in this repository on the same graph and
//! prints the trade-off table an engineer would use to choose between
//! them: trust assumption, privacy model, empirical error (mean over
//! trials — DP outputs are random), runtime.

use cargo_baselines::{
    central_lap_triangles, local2rounds_triangles, local_rr_triangles, Local2RoundsConfig,
};
use cargo_core::{CargoConfig, CargoSystem};
use cargo_graph::generators::presets::SnapDataset;
use cargo_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const TRIALS: u64 = 5;

fn main() {
    let (full, _) = SnapDataset::Wiki.load_or_synthesize(None, 0);
    let graph = full.induced_prefix(1_000);
    let t_true = cargo_graph::count_triangles(&graph) as f64;
    let epsilon = 2.0;
    println!(
        "Wiki subsample: {} users, {} edges, T = {t_true}",
        graph.n(),
        graph.edge_count()
    );
    println!("budget: eps = {epsilon}, {TRIALS} trials per protocol\n");
    println!(
        "{:<14} {:<16} {:<22} {:>14} {:>10}",
        "protocol", "server trust", "privacy", "mean rel. err", "time"
    );

    // Central model: requires a trusted curator.
    run(&graph, "CentralLap", "trusted", "eps-Edge CDP", t_true, |g, s| {
        let mut rng = StdRng::seed_from_u64(s);
        central_lap_triangles(g, epsilon, &mut rng).noisy_count
    });

    // CARGO: two untrusted, non-colluding servers.
    run(&graph, "CARGO", "2 untrusted", "eps-Edge DDP", t_true, |g, s| {
        CargoSystem::new(CargoConfig::new(epsilon).with_seed(s))
            .run(g)
            .noisy_count
    });

    // Local model, two rounds: no trust at all, heavy noise.
    run(&graph, "Local2Rounds", "none", "eps-Edge LDP", t_true, |g, s| {
        let mut rng = StdRng::seed_from_u64(s);
        local2rounds_triangles(g, Local2RoundsConfig::paper_split(epsilon), &mut rng).noisy_count
    });

    // Local model, one round: even cheaper, even noisier.
    run(&graph, "LocalRR", "none", "eps-Edge LDP", t_true, |g, s| {
        let mut rng = StdRng::seed_from_u64(s);
        local_rr_triangles(g, epsilon, &mut rng).noisy_count
    });

    println!(
        "\nTakeaway: CARGO buys central-model accuracy at the cost of an O(n^3)\n\
         secure computation; the local protocols are fast but pay orders of\n\
         magnitude in error. (Fig. 1 of the paper, as a table.)"
    );
}

fn run(
    graph: &Graph,
    name: &str,
    trust: &str,
    privacy: &str,
    t_true: f64,
    mut protocol: impl FnMut(&Graph, u64) -> f64,
) {
    let start = Instant::now();
    let mut rel = 0.0;
    for s in 0..TRIALS {
        // Decorrelate trial seeds (see cargo-bench::runners::trial_seed).
        let seed = (s + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD15EA5E;
        let estimate = protocol(graph, seed);
        rel += (estimate - t_true).abs() / t_true;
    }
    rel /= TRIALS as f64;
    let dt = start.elapsed() / TRIALS as u32;
    println!(
        "{:<14} {:<16} {:<22} {:>14.5} {:>9.3}s",
        name,
        trust,
        privacy,
        rel,
        dt.as_secs_f64()
    );
}
