//! Projection tuning: why similarity-based projection preserves
//! triangles.
//!
//! ```text
//! cargo run --release --example projection_tuning
//! ```
//!
//! Sweeps the projection parameter θ on a scale-free graph and prints
//! the surviving triangle fraction for the paper's similarity-based
//! `Project` (Algorithm 3) vs the random-deletion `GraphProjection`
//! baseline — the experiment behind Figs. 9/10, at example scale.

use cargo_baselines::random_project_matrix;
use cargo_core::{estimate_max_degree, project_matrix};
use cargo_graph::count_triangles_matrix;
use cargo_graph::generators::presets::SnapDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let g = full.induced_prefix(1_500);
    let matrix = g.to_bit_matrix();
    let degrees = g.degrees();
    let t_before = count_triangles_matrix(&matrix);
    println!(
        "graph: {} users, {} edges, d_max = {}, T = {t_before}",
        g.n(),
        g.edge_count(),
        g.max_degree()
    );

    // The noisy degrees each user would see after the Max round (ε₁ = 0.2).
    let mut rng = StdRng::seed_from_u64(5);
    let noisy = estimate_max_degree(&degrees, 0.2, &mut rng).noisy_degrees;

    println!(
        "\n{:>6} | {:>22} | {:>22}",
        "theta", "Project keeps", "GraphProjection keeps"
    );
    for theta in [10usize, 25, 50, 100, 250, 500] {
        let sim = project_matrix(&matrix, &degrees, &noisy, theta);
        let sim_kept = count_triangles_matrix(&sim.matrix);
        // Average the randomized baseline over a few seeds.
        let mut rand_kept = 0u64;
        const TRIALS: u64 = 5;
        for s in 0..TRIALS {
            let mut prng = StdRng::seed_from_u64(100 + s);
            rand_kept += count_triangles_matrix(&random_project_matrix(&matrix, theta, &mut prng));
        }
        rand_kept /= TRIALS;
        println!(
            "{theta:>6} | {:>12} ({:>5.1}%) | {:>12} ({:>5.1}%)",
            sim_kept,
            100.0 * sim_kept as f64 / t_before as f64,
            rand_kept,
            100.0 * rand_kept as f64 / t_before as f64,
        );
    }
    println!(
        "\nTriangle homogeneity (Observation 1) is why similarity wins: a\n\
         triangle's endpoints have similar degrees, so keeping degree-similar\n\
         neighbours keeps triangle edges."
    );
}
