//! Downstream task: differentially private global clustering
//! coefficient.
//!
//! ```text
//! cargo run --release --example clustering_coefficient
//! ```
//!
//! The paper's introduction motivates triangle counting via clustering
//! coefficients and transitivity. This example composes CARGO's noisy
//! triangle count with a noisy wedge count (a degree-based Laplace
//! query each user answers locally) to release
//! `C = 3·T' / W'` under a combined privacy budget.

use cargo_core::{CargoConfig, CargoSystem};
use cargo_dp::sample_laplace;
use cargo_graph::generators::presets::SnapDataset;
use cargo_graph::triangles::global_clustering_coefficient;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Facebook-like graph, subsampled to the paper's default n = 2000.
    let (full, origin) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let graph = full.induced_prefix(2_000);
    println!(
        "Facebook subsample ({origin:?}): {} users, {} edges",
        graph.n(),
        graph.edge_count()
    );

    // Budget: ε_T = 2 for triangles (CARGO), ε_W = 0.5 for wedges.
    let eps_triangles = 2.0;
    let eps_wedges = 0.5;

    // 1. Noisy triangle count via CARGO.
    let out = CargoSystem::new(CargoConfig::new(eps_triangles).with_seed(11)).run(&graph);

    // 2. Noisy wedge count: W = Σ_v C(d_v, 2). Under Edge LDP, one
    //    edge changes one user's wedge count by at most d_max − 1; each
    //    user perturbs her local wedge count with Lap((d'_max−1)/ε_W)
    //    and the server sums (the same distributed-trust model).
    let mut rng = StdRng::seed_from_u64(23);
    let sensitivity = (out.d_max_noisy - 1.0).max(1.0);
    let noisy_wedges: f64 = graph
        .degrees()
        .iter()
        .map(|&d| {
            let w = d as f64 * (d as f64 - 1.0) / 2.0;
            w + sample_laplace(&mut rng, sensitivity / eps_wedges)
        })
        .sum();

    let noisy_cc = (3.0 * out.noisy_count / noisy_wedges).clamp(0.0, 1.0);
    let true_cc = global_clustering_coefficient(&graph).unwrap_or(0.0);

    println!("\n--- private clustering coefficient ---");
    println!("true triangles   : {}", out.true_count);
    println!("noisy triangles  : {:.1}", out.noisy_count);
    println!("noisy wedges     : {:.1}", noisy_wedges);
    println!("true  C          : {:.5}", true_cc);
    println!("noisy C          : {:.5}", noisy_cc);
    println!(
        "absolute error   : {:.5}  (budget: eps_T = {eps_triangles}, eps_W = {eps_wedges})",
        (noisy_cc - true_cc).abs()
    );
}
