//! Privacy-facing integration tests: budget accounting, noise
//! presence, and the distributed-noise privacy argument's mechanics.

use cargo_repro::core::{CargoConfig, CargoSystem};
use cargo_repro::dp::{DistributedLaplace, PrivacyAccountant, PrivacyBudget};
use cargo_repro::graph::generators::barabasi_albert;
use cargo_testutil::stats::{
    assert_mean_close, assert_sign_balanced, assert_variance_close, variance, DEFAULT_Z,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_run_spends_exactly_the_declared_budget() {
    let g = barabasi_albert(120, 4, 1);
    for eps in [0.5, 1.0, 2.0, 3.0] {
        let out = CargoSystem::new(CargoConfig::new(eps).with_seed(1)).run(&g);
        let spent: f64 = out.ledger.iter().map(|(_, e)| e).sum();
        assert!(
            (spent - eps).abs() < 1e-9,
            "eps={eps}: ledger spent {spent}"
        );
    }
}

#[test]
fn split_fraction_controls_the_ledger() {
    let g = barabasi_albert(100, 4, 2);
    let out = CargoSystem::new(
        CargoConfig::new(2.0).with_seed(1).with_split_fraction(0.25),
    )
    .run(&g);
    assert!((out.ledger[0].1 - 0.5).abs() < 1e-9, "Max gets 0.25*2");
    assert!((out.ledger[1].1 - 1.5).abs() < 1e-9, "Perturb gets 0.75*2");
}

#[test]
fn noise_is_actually_present_at_small_epsilon() {
    // A DP mechanism that returns the exact count is broken. At tiny ε
    // the output must differ from the exact (projected) count
    // essentially always, and by a lot.
    let g = barabasi_albert(100, 4, 3);
    let mut big_deviation = 0;
    const RUNS: u64 = 30;
    for s in 0..RUNS {
        let out = CargoSystem::new(CargoConfig::new(0.1).with_seed(s * 2654435761)).run(&g);
        if (out.noisy_count - out.projected_count as f64).abs() > 10.0 {
            big_deviation += 1;
        }
    }
    assert!(
        big_deviation > RUNS / 2,
        "only {big_deviation}/{RUNS} runs deviated at eps=0.1"
    );
}

#[test]
fn accountant_blocks_overdraft_in_sequence() {
    let mut acc = PrivacyAccountant::new(PrivacyBudget::new(1.0));
    acc.spend("q1", 0.6).unwrap();
    assert!(acc.spend("q2", 0.6).is_err());
    acc.spend("q2-retry", 0.4).unwrap();
    assert_eq!(acc.remaining(), 0.0);
    assert_eq!(acc.ledger().len(), 2);
}

#[test]
fn partial_noise_alone_is_insufficient_but_aggregate_is_sufficient() {
    // The design principle of Algorithm 5: each user's γᵢ has variance
    // 2λ²/n ("insufficient to provide an LDP guarantee"), while the sum
    // has the full central-model variance 2λ².
    let n = 100;
    let dist = DistributedLaplace::new(n, 20.0, 1.0); // λ = 20
    let mut rng = StdRng::seed_from_u64(4);
    const TRIALS: usize = 30_000;
    let partials: Vec<f64> = (0..TRIALS).map(|_| dist.sample_partial(&mut rng)).collect();
    let partial_var = variance(&partials);
    let full_var = dist.aggregate_variance();
    assert!(
        partial_var < full_var / (n as f64) * 1.3,
        "partial variance {partial_var} vs full {full_var}"
    );
    // γᵢ = Gam(1/n) − Gam(1/n) is symmetric and must match its
    // documented per-user variance; the difference of two small-shape
    // Gammas is extremely heavy-tailed, hence the large kurtosis
    // factor in the CLT band.
    assert_mean_close("partial noise", &partials, 0.0, partial_var, DEFAULT_Z);
    assert_variance_close(
        "partial noise",
        &partials,
        dist.partial_variance(),
        3.0 * n as f64,
        DEFAULT_Z,
    );
    assert_sign_balanced("partial noise", &partials, DEFAULT_Z);
}

#[test]
fn epsilon_controls_output_concentration() {
    // Empirical DP sanity: at fixed seed set, the spread of outputs
    // shrinks monotonically as ε grows through the paper's sweep.
    let g = barabasi_albert(150, 5, 5);
    let t = cargo_repro::graph::count_triangles(&g) as f64;
    let spread = |eps: f64| -> f64 {
        (0..12u64)
            .map(|s| {
                let out =
                    CargoSystem::new(CargoConfig::new(eps).with_seed(s * 7907 + 3)).run(&g);
                (out.noisy_count - t).abs()
            })
            .sum::<f64>()
            / 12.0
    };
    let s05 = spread(0.5);
    let s30 = spread(3.0);
    assert!(
        s05 > 2.0 * s30,
        "spread at eps=0.5 ({s05}) vs eps=3 ({s30})"
    );
}
