//! Property-based integration tests: invariants that must hold for
//! arbitrary graphs, budgets, and seeds.

use cargo_repro::core::{project_matrix, secure_triangle_count, CargoConfig, CargoSystem};
use cargo_repro::graph::{count_triangles_matrix, Graph};
use cargo_repro::mpc::Ring64;
use proptest::prelude::*;

/// Strategy: a random simple graph on up to `max_n` nodes as an edge
/// probability + seed pair realised through the ER generator.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..max_n, 0.0f64..0.6, any::<u64>()).prop_map(|(n, p, seed)| {
        cargo_repro::graph::generators::erdos_renyi(n, p, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn secure_count_equals_plaintext_for_arbitrary_graphs(
        g in arb_graph(36),
        seed: u64,
    ) {
        let m = g.to_bit_matrix();
        let want = count_triangles_matrix(&m);
        let res = secure_triangle_count(&m, seed, 2);
        prop_assert_eq!(res.reconstruct(), Ring64(want));
    }

    #[test]
    fn projection_never_increases_degrees_or_triangles(
        g in arb_graph(40),
        theta in 1usize..20,
    ) {
        let m = g.to_bit_matrix();
        let degrees = g.degrees();
        let noisy: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
        let res = project_matrix(&m, &degrees, &noisy, theta);
        for (i, &deg) in degrees.iter().enumerate() {
            prop_assert!(res.matrix.degree(i) <= deg);
            prop_assert!(res.matrix.degree(i) <= theta.max(deg.min(theta)));
        }
        prop_assert!(
            count_triangles_matrix(&res.matrix) <= count_triangles_matrix(&m)
        );
    }

    #[test]
    fn pipeline_diagnostics_are_internally_consistent(
        g in arb_graph(30),
        eps in 0.5f64..4.0,
        seed: u64,
    ) {
        let out = CargoSystem::new(CargoConfig::new(eps).with_seed(seed)).run(&g);
        // Projection can only lose triangles.
        prop_assert!(out.projected_count <= out.true_count);
        // Ledger must sum to the declared budget.
        let spent: f64 = out.ledger.iter().map(|(_, e)| e).sum();
        prop_assert!((spent - eps).abs() < 1e-9);
        // Output must be finite.
        prop_assert!(out.noisy_count.is_finite());
        // Communication accounting is non-trivial for n >= 3.
        prop_assert!(out.net.elements >= 1);
    }

    #[test]
    fn fixed_seed_fixed_output(g in arb_graph(24), eps in 0.5f64..3.0, seed: u64) {
        let cfg = CargoConfig::new(eps).with_seed(seed);
        let a = CargoSystem::new(cfg).run(&g);
        let b = CargoSystem::new(cfg).run(&g);
        prop_assert_eq!(a.noisy_count, b.noisy_count);
        prop_assert_eq!(a.d_max_noisy, b.d_max_noisy);
        prop_assert_eq!(a.net, b.net);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ring_share_reconstruct_arbitrary_values(x: u64, seed: u64) {
        use cargo_repro::mpc::{share_with, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        let p = share_with(Ring64(x), &mut rng);
        prop_assert_eq!(p.reconstruct(), Ring64(x));
    }

    #[test]
    fn fixed_point_homomorphism_arbitrary_noise(
        a in -1e6f64..1e6,
        b in -1e6f64..1e6,
    ) {
        use cargo_repro::dp::FixedPointCodec;
        let c = FixedPointCodec::new(16);
        let decoded = c.decode(c.encode(a) + c.encode(b));
        prop_assert!((decoded - (a + b)).abs() <= 1.0 / c.scale_f64());
    }

    #[test]
    fn secure_count_matches_golden_fixture_under_any_seed(
        idx in 0usize..cargo_testutil::golden_fixtures().len(),
        seed: u64,
    ) {
        // The golden fixture set (cargo-testutil) pins known triangle
        // counts; the secure protocol must reproduce each of them under
        // every sharing seed.
        let fixtures = cargo_testutil::golden_fixtures();
        let f = &fixtures[idx];
        let res = secure_triangle_count(&f.graph.to_bit_matrix(), seed, 2);
        prop_assert_eq!(res.reconstruct(), Ring64(f.triangles));
    }
}
