//! End-to-end integration: the full CARGO pipeline against ground
//! truth, across graph families and against the paper's claims.

use cargo_repro::baselines::{central_lap_triangles, local2rounds_triangles, Local2RoundsConfig};
use cargo_repro::core::{theory, CargoConfig, CargoSystem};
use cargo_repro::graph::generators::presets::SnapDataset;
use cargo_repro::graph::generators::{barabasi_albert, erdos_renyi, watts_strogatz};
use cargo_repro::graph::{count_triangles, Graph};
use cargo_testutil::golden_fixtures;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pipeline_ground_truth_matches_golden_fixtures() {
    // `true_count` is plaintext bookkeeping, so it must hit the shared
    // golden values exactly on every fixture, however tiny.
    for f in golden_fixtures() {
        let out = CargoSystem::new(CargoConfig::new(4.0).with_seed(11)).run(&f.graph);
        assert_eq!(out.true_count, f.triangles, "{}", f.name);
        assert!(out.noisy_count.is_finite(), "{}", f.name);
        assert!(out.projected_count <= out.true_count, "{}", f.name);
    }
}

fn mean_l2<F: FnMut(u64) -> f64>(t_true: f64, trials: u64, mut f: F) -> f64 {
    (0..trials)
        .map(|s| {
            let e = f(s) - t_true;
            e * e
        })
        .sum::<f64>()
        / trials as f64
}

#[test]
fn cargo_is_accurate_on_every_graph_family() {
    // The protocol should track the truth (relative error < 20% at a
    // generous budget) on scale-free, small-world, and ER graphs alike.
    let graphs: Vec<(&str, Graph)> = vec![
        ("barabasi", barabasi_albert(300, 6, 1)),
        ("watts", watts_strogatz(300, 10, 0.1, 2)),
        ("erdos", erdos_renyi(300, 0.1, 3)),
    ];
    for (name, g) in graphs {
        let t = count_triangles(&g) as f64;
        assert!(t > 0.0, "{name} must have triangles");
        let out = CargoSystem::new(CargoConfig::new(6.0).with_seed(5)).run(&g);
        let rel = (out.noisy_count - t).abs() / t;
        assert!(rel < 0.2, "{name}: rel error {rel} (T={t}, T'={})", out.noisy_count);
    }
}

#[test]
fn utility_ordering_on_calibrated_dataset() {
    // Fig. 5's claim at integration scale: Local2Rounds ≫ CARGO ≈ Central.
    let (full, _) = SnapDataset::Facebook.load_or_synthesize(None, 0);
    let g = full.induced_prefix(600);
    let t = count_triangles(&g) as f64;
    let trials = 6;
    let l2_cargo = mean_l2(t, trials, |s| {
        CargoSystem::new(CargoConfig::new(2.0).with_seed(0x1000 + s * 7919))
            .run(&g)
            .noisy_count
    });
    let l2_central = mean_l2(t, trials, |s| {
        let mut rng = StdRng::seed_from_u64(0x2000 + s * 104729);
        central_lap_triangles(&g, 2.0, &mut rng).noisy_count
    });
    let l2_local = mean_l2(t, trials, |s| {
        let mut rng = StdRng::seed_from_u64(0x3000 + s * 1299709);
        local2rounds_triangles(&g, Local2RoundsConfig::paper_split(2.0), &mut rng).noisy_count
    });
    assert!(
        l2_local > 10.0 * l2_cargo,
        "local {l2_local} vs cargo {l2_cargo}"
    );
    assert!(
        l2_cargo < 50.0 * l2_central,
        "cargo {l2_cargo} vs central {l2_central}"
    );
}

#[test]
fn measured_error_matches_theory_bound() {
    // Theorem 6: E[l2] of the perturbation ≈ 2(d'_max/ε₂)². Measured
    // end-to-end error (which adds projection loss and d'max noise)
    // should be within a small factor of the bound.
    let g = barabasi_albert(400, 5, 9);
    let t = count_triangles(&g) as f64;
    let eps = 2.0;
    let trials = 30;
    let measured = mean_l2(t, trials, |s| {
        CargoSystem::new(CargoConfig::new(eps).with_seed(0xAA00 + s * 6151))
            .run(&g)
            .noisy_count
    });
    let d_max = g.max_degree() as f64;
    let bound = theory::cargo_expected_l2(d_max, 0.9 * eps);
    assert!(
        measured < 6.0 * bound && measured > bound / 6.0,
        "measured {measured} vs theory {bound}"
    );
}

#[test]
fn epsilon_monotonicity_end_to_end() {
    // More budget, less error (averaged over seeds).
    let g = barabasi_albert(250, 5, 13);
    let t = count_triangles(&g) as f64;
    let trials = 20;
    let l2_at = |eps: f64| {
        mean_l2(t, trials, |s| {
            CargoSystem::new(CargoConfig::new(eps).with_seed(0xBB00 + s * 3571))
                .run(&g)
                .noisy_count
        })
    };
    let low = l2_at(0.5);
    let high = l2_at(3.0);
    assert!(
        low > 3.0 * high,
        "l2 at eps=0.5 ({low}) should far exceed l2 at eps=3 ({high})"
    );
}

#[test]
fn snap_presets_run_through_the_full_pipeline() {
    for ds in SnapDataset::TABLE4 {
        let (full, _) = ds.load_or_synthesize(None, 1);
        let g = full.induced_prefix(300);
        let out = CargoSystem::new(CargoConfig::new(2.0).with_seed(3)).run(&g);
        assert!(out.noisy_count.is_finite(), "{}", ds.name());
        assert!(out.true_count > 0, "{} preset has no triangles", ds.name());
        assert!(out.projected_count <= out.true_count);
    }
}

#[test]
fn node_dp_extension_is_strictly_noisier() {
    let g = barabasi_albert(200, 5, 17);
    let t = count_triangles(&g) as f64;
    let trials = 10;
    let edge = mean_l2(t, trials, |s| {
        CargoSystem::new(CargoConfig::new(2.0).with_seed(0xCC00 + s * 2903))
            .run(&g)
            .noisy_count
    });
    let node = mean_l2(t, trials, |s| {
        cargo_repro::core::node_dp::run_node_dp(
            &CargoConfig::new(2.0).with_seed(0xCC00 + s * 2903),
            &g,
        )
        .noisy_count
    });
    assert!(
        node > 10.0 * edge,
        "node-DP l2 {node} should dwarf edge-DP l2 {edge}"
    );
}
