//! Cross-crate checks of the cryptographic layer: the secure count
//! must compute exactly the plaintext triple-product count on every
//! input class, and shares must never leak structure.

use cargo_repro::core::{secure_triangle_count, CargoConfig, CargoSystem};
use cargo_repro::graph::generators::presets::SnapDataset;
use cargo_repro::graph::generators::{chung_lu, erdos_renyi};
use cargo_repro::graph::{count_triangles_matrix, BitMatrix, Graph};
use cargo_repro::mpc::Ring64;
use cargo_testutil::stats::{assert_sign_balanced, mean, DEFAULT_Z};
use cargo_testutil::golden_fixtures;

#[test]
fn secure_count_matches_golden_fixtures() {
    // The shared fixture set pins both hand-counted micro graphs and
    // seeded generator outputs; the secure count must agree with every
    // golden value exactly (it is an exact protocol — all the noise
    // lives in Perturb).
    for f in golden_fixtures() {
        let res = secure_triangle_count(&f.graph.to_bit_matrix(), 0xF00D, 1);
        assert_eq!(res.reconstruct(), Ring64(f.triangles), "{}", f.name);
    }
}

#[test]
fn secure_count_exact_on_dataset_subsamples() {
    for ds in [SnapDataset::Facebook, SnapDataset::GrQc] {
        let (full, _) = ds.load_or_synthesize(None, 2);
        let g = full.induced_prefix(250);
        let m = g.to_bit_matrix();
        let want = count_triangles_matrix(&m);
        let res = secure_triangle_count(&m, 0xFEED, 0);
        assert_eq!(res.reconstruct(), Ring64(want), "{}", ds.name());
    }
}

#[test]
fn secure_count_exact_on_projected_asymmetric_matrices() {
    let g = chung_lu(300, 2500, 80, 2.3, 7);
    let degrees = g.degrees();
    let noisy: Vec<f64> = degrees.iter().map(|&d| d as f64 + 0.5).collect();
    for theta in [5usize, 15, 40] {
        let proj = cargo_repro::core::project_matrix(&g.to_bit_matrix(), &degrees, &noisy, theta);
        let want = count_triangles_matrix(&proj.matrix);
        let res = secure_triangle_count(&proj.matrix, theta as u64, 4);
        assert_eq!(res.reconstruct(), Ring64(want), "theta {theta}");
    }
}

#[test]
fn secure_count_exact_on_adversarial_matrices() {
    // All-ones (complete), all-zeros, single star, one-directional bits.
    let n = 40;
    let mut complete = BitMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                complete.set(i, j, true);
            }
        }
    }
    let cases = [
        ("complete", complete),
        ("empty", BitMatrix::zeros(n)),
        ("one-way", {
            let mut m = BitMatrix::zeros(n);
            // Row 0 claims edges to everyone, nobody reciprocates;
            // triples (0,j,k) consult a_0j, a_0k, a_jk → all zero products.
            for j in 1..n {
                m.set(0, j, true);
            }
            m
        }),
    ];
    for (name, m) in cases {
        let want = count_triangles_matrix(&m);
        let res = secure_triangle_count(&m, 11, 3);
        assert_eq!(res.reconstruct(), Ring64(want), "{name}");
    }
}

#[test]
fn accumulated_shares_look_uniform_across_seeds() {
    // Run the same graph under many seeds: S1's final share should
    // behave like a uniform ring element (balanced popcount), because
    // everything it accumulates is one-time-padded.
    let g = erdos_renyi(60, 0.2, 1);
    let m = g.to_bit_matrix();
    let mut pop = 0u32;
    const RUNS: u32 = 256;
    for seed in 0..RUNS {
        pop += secure_triangle_count(&m, seed as u64, 2)
            .share1
            .to_u64()
            .count_ones();
    }
    let mean = pop as f64 / RUNS as f64;
    assert!(
        (mean - 32.0).abs() < 1.5,
        "share popcount mean {mean}, expected ~32"
    );
}

#[test]
fn upload_and_communication_scale_as_documented() {
    let n = 30;
    let g = erdos_renyi(n, 0.3, 2);
    let res = secure_triangle_count(&g.to_bit_matrix(), 5, 1);
    let triples = (n * (n - 1) * (n - 2) / 6) as u64;
    assert_eq!(res.triples, triples);
    assert_eq!(res.net.elements, 6 * triples);
    assert_eq!(res.net.bytes, 48 * triples);
    assert_eq!(res.upload_elements, 2 * (n * n) as u64);
}

#[test]
fn full_pipeline_reconstruction_is_consistent_with_diagnostics() {
    // noisy_count − projected_count should equal the aggregate noise;
    // across seeds its mean should be ≈ 0 (unbiasedness of Lemma 1).
    let g = Graph::from_edges(
        6,
        &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
    )
    .unwrap();
    const RUNS: u64 = 400;
    let noise: Vec<f64> = (0..RUNS)
        .map(|s| {
            let out = CargoSystem::new(CargoConfig::new(4.0).with_seed(s * 48271 + 1)).run(&g);
            out.noisy_count - out.projected_count as f64
        })
        .collect();
    // Noise sd per run ≈ sqrt(2)·d'max/3.6 ≈ 1.6; sd of mean ≈ 0.08.
    let m = mean(&noise);
    assert!(m.abs() < 0.5, "noise mean {m} not near zero");
    // Lemma 1 noise is symmetric about zero: positive and negative
    // draws must be balanced.
    assert_sign_balanced("aggregate Lemma-1 noise", &noise, DEFAULT_Z);
}
